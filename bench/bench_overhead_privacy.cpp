// Section 7.1: performance and overhead of the privacy-preserving protocol.
//
// Reproduces every number of that section:
//  * CMS size vs cleartext reporting, for T = 10k / 50k / 100k
//    (paper: 185 / 196 / 207 KB vs ~3.5 KB average cleartext);
//  * blinding-roster exchange per client for 10k / 50k users
//    (paper: 0.38 MB / 1.9 MB, assuming ~256-bit group elements);
//  * client-side blinding computation time (paper: ~30 s for 1k users and
//    a 5k-cell sketch, on 2019 hardware and per-cell hashing; our pads are
//    expanded in counter mode, so expect a much smaller number);
//  * OPRF mapping latency and wire size (paper: <500 ms, two group
//    elements).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_json.hpp"
#include "client/url_mapper.hpp"
#include "crypto/blinding.hpp"
#include "crypto/mont_kernel.hpp"
#include "proto/client_reactor.hpp"
#include "proto/raw_frame_io.hpp"
#include "proto/tcp.hpp"
#include "server/cluster.hpp"
#include "server/dispatcher.hpp"
#include "server/durable_backend.hpp"
#include "server/endpoint.hpp"
#include "scenario/harness.hpp"
#include "server/remote_backend.hpp"
#include "server/round.hpp"
#include "sketch/count_min.hpp"

namespace {
using namespace eyw;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ----------------------------------------------------------------------
// Transport-concurrency bench helpers: a minimal reproduction of the
// pre-reactor thread-per-connection FrameServer (blocking accept, one
// blocking exchange-loop thread per connection), so the before/after of
// the concurrency model is measured inside one binary — the production
// reactor FrameServer is the after. Raw-frame client I/O comes from
// proto/raw_frame_io.hpp (shared with quickstart --reporters and the
// reactor tests).

using eyw::proto::raw::connect_loopback;
using eyw::proto::raw::process_threads;
using eyw::proto::raw::read_framed;
using eyw::proto::raw::with_prefix;

bool send_raw(int fd, std::span<const std::uint8_t> bytes) {
  return eyw::proto::raw::send_all(fd, bytes);
}

/// The old model, distilled: every accepted connection gets its own OS
/// thread running a blocking read-frame / handle / write-reply loop.
class ThreadPerConnServer {
 public:
  explicit ThreadPerConnServer(eyw::proto::FrameHandler handler)
      : handler_(std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr));
    (void)::listen(listen_fd_, 256);
    socklen_t len = sizeof(addr);
    (void)::getsockname(listen_fd_,
                        reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: shutting down
        std::lock_guard<std::mutex> lock(mu_);
        workers_.emplace_back([this, fd] {
          for (;;) {
            const auto request = read_framed(fd);
            if (request.empty()) break;  // EOF (bench requests: never empty)
            if (!send_raw(fd, with_prefix(handler_(request)))) break;
          }
          ::close(fd);
        });
      }
    });
  }

  ~ThreadPerConnServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    acceptor_.join();
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  eyw::proto::FrameHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::thread> workers_;
};

struct ConcurrencyRow {
  double wall_ms = 0.0;
  std::size_t peak_threads = 0;
  std::size_t exchanges = 0;
};

/// C concurrent connections, `rounds` outstanding-request waves each: all
/// connections hold an in-flight request at once, every wave. Peak
/// resident threads are sampled with every connection established.
ConcurrencyRow drive_connections(std::uint16_t port, std::size_t conns,
                                 int rounds) {
  const auto framed = with_prefix(eyw::proto::encode_oprf_key_query());
  ConcurrencyRow row;
  const auto t0 = Clock::now();
  std::vector<int> fds;
  fds.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    const int fd = connect_loopback(port);
    if (fd < 0) break;
    fds.push_back(fd);
  }
  for (int r = 0; r < rounds; ++r) {
    for (const int fd : fds) (void)send_raw(fd, framed);
    row.peak_threads = std::max(row.peak_threads, process_threads());
    for (const int fd : fds)
      if (!read_framed(fd).empty()) ++row.exchanges;
  }
  row.wall_ms = ms_since(t0);
  for (const int fd : fds) ::close(fd);
  return row;
}

// ----------------------------------------------------------------------
// Durability bench helpers: the 128-reporter round over TCP (reactor
// server, sharded dispatch, pipelined control plane) with the write-ahead
// journal off / group-commit / fsync-per-submit, same synthetic inputs.
// Two round shapes share the harness: the full protocol round (reporters
// derive their per-round blinding pads and submit as each is ready — the
// deployment-shaped arrival pattern) and a burst round (pre-encoded
// frames, no client compute — adversarial pressure on the queue).

struct DurableRoundRow {
  double wall_ms = 0.0;  // best full-round wall across the repeats
  double users_threshold = 0.0;
  std::size_t reports = 0;
  std::size_t acked = 0;
  eyw::storage::DurabilityStats stats;  // zeroes when the journal is off
};

eyw::server::BackendConfig durable_bench_config() {
  // 4 x 64 cells keeps the paced round (128 reporters x 127-peer pad
  // expansion each) in bench territory; journal volume and client compute
  // both scale linearly in cells, so the on/off ratio is unaffected.
  return {.cms_params = {.depth = 4, .width = 64},
          .cms_hash_seed = 3,
          .id_space = 10'000,
          .users_rule = eyw::core::ThresholdRule::kMean};
}

std::vector<eyw::crypto::BlindCell> durable_bench_cells(std::size_t i,
                                                        std::size_t cells) {
  std::vector<eyw::crypto::BlindCell> out(cells);
  for (std::size_t c = 0; c < cells; ++c)
    out[c] = static_cast<eyw::crypto::BlindCell>(i * 2654435761u + c);
  return out;
}

/// The client-side half of the paper's round: a fixed roster whose members
/// derive additive shares of zero pairwise (Kursawe-style). Built once —
/// roster keygen plus every pairwise DH secret — and shared read-only by
/// all bench modes; blind() is const and per-reporter.
struct BlindingSwarm {
  eyw::crypto::DhGroup group;
  std::vector<eyw::crypto::BlindingParticipant> participants;
};

BlindingSwarm make_blinding_swarm(std::size_t reporters) {
  eyw::util::Rng rng(31);
  eyw::crypto::DhGroup group = eyw::crypto::DhGroup::generate(rng, 256);
  std::vector<eyw::crypto::DhKeyPair> keys;
  std::vector<eyw::crypto::Bignum> publics;
  keys.reserve(reporters);
  publics.reserve(reporters);
  for (std::size_t i = 0; i < reporters; ++i) {
    keys.push_back(eyw::crypto::dh_keygen(group, rng));
    publics.push_back(keys.back().public_key);
  }
  BlindingSwarm swarm{std::move(group), {}};
  swarm.participants.reserve(reporters);
  for (std::size_t i = 0; i < reporters; ++i)
    swarm.participants.push_back(eyw::crypto::BlindingParticipant(
        swarm.group, i, keys[i],
        std::span<const eyw::crypto::Bignum>(publics)));
  return swarm;
}

/// Reporter i's true (unblinded) sketch cells: sparse small counts, so
/// the aggregate the pads cancel down to is deterministic across modes.
std::vector<eyw::crypto::BlindCell> durable_true_cells(std::size_t i,
                                                       std::size_t cells) {
  std::vector<eyw::crypto::BlindCell> out(cells, 0);
  for (std::size_t c = i % 7; c < cells; c += 7 + i % 5)
    out[c] = static_cast<eyw::crypto::BlindCell>(1 + i % 3);
  return out;
}

/// One server stack + 128 reporter channels; `rounds` full rounds (begin,
/// 128 pipelined report submissions, missing barrier, finalize), keeping
/// the best wall time. Empty `journal_dir` = durability off. With a
/// `swarm`, each reporter derives its per-round pad and submits when
/// ready (the paper's cadence); without one, pre-encoded frames go out in
/// one burst.
DurableRoundRow run_durable_rounds(const std::string& journal_dir,
                                   bool sync_each, int rounds,
                                   const BlindingSwarm* swarm) {
  namespace server = eyw::server;
  constexpr std::size_t kReporters = 128;
  constexpr std::size_t kShards = 2;
  const server::BackendConfig config = durable_bench_config();

  server::BackendCluster cluster(config, kShards);
  std::unique_ptr<server::DurableBackend> durable;
  if (!journal_dir.empty())
    durable = std::make_unique<server::DurableBackend>(
        cluster, server::DurabilityConfig{.dir = journal_dir,
                                          .sync_each_submit = sync_each});
  server::BackendEndpoint endpoint(
      durable ? static_cast<server::RoundBackend&>(*durable)
              : static_cast<server::RoundBackend&>(cluster),
      &cluster, /*serve_control=*/true);
  server::AsyncDispatcher dispatcher(
      [&](std::span<const std::uint8_t> frame) {
        return endpoint.handle(frame);
      },
      kShards, server::cluster_lane_router(cluster),
      server::control_plane_barrier());
  eyw::proto::FrameServer frame_server(
      dispatcher.handler(),
      {.backlog = 256, .max_connections = kReporters + 8});
  dispatcher.set_frame_recycler(frame_server.frame_recycler());

  eyw::proto::ClientReactor reactor({.shards = 2, .backoff_jitter_seed = 5});
  auto control = reactor.open("127.0.0.1", frame_server.port());
  server::RemoteBackend remote(*control, config);
  std::vector<std::shared_ptr<eyw::proto::ClientChannel>> channels;
  channels.reserve(kReporters);
  for (std::size_t i = 0; i < kReporters; ++i)
    channels.push_back(reactor.open("127.0.0.1", frame_server.port()));

  DurableRoundRow row;
  row.wall_ms = 1e300;
  for (int r = 1; r <= rounds; ++r) {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::atomic<std::size_t> acked{0};
    const auto on_ack = [&](eyw::proto::AsyncResult res) {
      if (res.ok() && !res.reply.empty()) acked.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    };
    const auto t0 = Clock::now();
    remote.begin_round(static_cast<std::uint64_t>(r), kReporters);
    if (swarm != nullptr) {
      // Full protocol round: a few client threads work through the
      // roster, each reporter blinding its true cells with its per-round
      // pad and shipping the report the moment it is ready. Submissions
      // arrive spread across the round's client compute — the queue's
      // group commit runs concurrently instead of after one burst.
      std::atomic<std::size_t> cursor{0};
      constexpr std::size_t kClientThreads = 4;
      std::vector<std::thread> swarm_threads;
      swarm_threads.reserve(kClientThreads);
      for (std::size_t t = 0; t < kClientThreads; ++t)
        swarm_threads.emplace_back([&] {
          for (std::size_t i; (i = cursor.fetch_add(1)) < kReporters;) {
            const std::vector<eyw::crypto::BlindCell> cells =
                durable_true_cells(i, config.cms_params.cells());
            const auto frame =
                eyw::proto::BlindedReport{
                    .participant = static_cast<std::uint32_t>(i),
                    .params = config.cms_params,
                    .cells = swarm->participants[i].blind(
                        cells, static_cast<std::uint64_t>(r))}
                    .encode(static_cast<std::uint64_t>(r));
            channels[i]->exchange_async(frame, on_ack);
          }
        });
      for (std::thread& th : swarm_threads) th.join();
    } else {
      for (std::size_t i = 0; i < kReporters; ++i) {
        const auto frame =
            eyw::proto::BlindedReport{
                .participant = static_cast<std::uint32_t>(i),
                .params = config.cms_params,
                .cells = durable_bench_cells(i, config.cms_params.cells())}
                .encode(static_cast<std::uint64_t>(r));
        channels[i]->exchange_async(frame, on_ack);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == kReporters; });
    }
    (void)remote.missing_participants();
    const server::RoundResult result = remote.finalize_round();
    row.wall_ms = std::min(row.wall_ms, ms_since(t0));
    row.users_threshold = result.users_threshold;
    row.reports = result.reports;
    row.acked = acked.load();
  }
  if (durable) {
    row.stats = durable->stats();
    durable->shutdown();
  }
  return row;
}
}  // namespace

int main(int argc, char** argv) {
  // --json <path>: machine-readable records for the perf trajectory
  // (same schema as bench_crypto_primitives; see bench_json.hpp).
  const std::string json_path = eyw::bench::extract_json_path(argc, argv);
  eyw::bench::JsonWriter json;
  const char* kernel = crypto::active_mont_kernel().name;

  std::printf("== CMS size vs cleartext (delta = epsilon = 0.001, 4 B cells) ==\n");
  for (const std::size_t t : {10'000u, 50'000u, 100'000u}) {
    const auto p = sketch::CmsParams::from_error_bounds(t, 0.001, 0.001);
    std::printf("  T=%-7zu d=%-3zu w=%-5zu -> %7.0f KB  (paper: %s)\n", t,
                p.depth, p.width, static_cast<double>(p.bytes()) / 1000.0,
                t == 10'000 ? "185KB" : t == 50'000 ? "196KB" : "207KB");
  }
  // Cleartext: 35 unique ads on average, 100-char URLs; heavy users ~250.
  std::printf("  cleartext avg: %.1f KB (35 ads x 100-char URLs); heavy user:"
              " %.1f KB (250 ads)\n\n",
              35 * 100 / 1000.0, 250 * 100 / 1000.0);

  std::printf("== Blinding roster exchange per client ==\n");
  for (const std::size_t users : {10'000u, 50'000u}) {
    for (const std::size_t element_bits : {256u, 1024u, 2048u}) {
      const double mb = static_cast<double>(users) *
                        (static_cast<double>(element_bits) / 8.0) / 1e6;
      std::printf("  %-6zu users, %4zu-bit elements: %6.2f MB downloaded "
                  "roster%s\n",
                  users, element_bits, mb,
                  element_bits == 256
                      ? (users == 10'000 ? "  (paper: 0.38MB)"
                                         : "  (paper: 1.9MB)")
                      : "");
    }
  }

  std::printf("\n== Client-side blinding computation (1k users, 5k cells) ==\n");
  {
    util::Rng rng(42);
    const crypto::DhGroup group = crypto::DhGroup::generate(rng, 256);
    // One real participant against a 1k roster: keygen for all peers, then
    // time the shared-secret derivation + pad expansion exactly as a
    // deployed client would run it.
    const std::size_t kRoster = 1'000;
    std::vector<crypto::DhKeyPair> keys;
    std::vector<crypto::Bignum> publics;
    keys.reserve(kRoster);
    for (std::size_t i = 0; i < kRoster; ++i) {
      keys.push_back(crypto::dh_keygen(group, rng));
      publics.push_back(keys.back().public_key);
    }
    const auto t0 = Clock::now();
    const crypto::BlindingParticipant participant(
        group, 0, keys[0], std::span<const crypto::Bignum>(publics));
    const double setup_ms = ms_since(t0);
    const auto t1 = Clock::now();
    const auto blind = participant.blinding_vector(5'000, /*round=*/1);
    const double blind_ms = ms_since(t1);
    std::printf("  pairwise-secret derivation (999 modexps): %8.1f ms\n",
                setup_ms);
    std::printf("  pad expansion for 5k cells x 999 peers:   %8.1f ms\n",
                blind_ms);
    std::printf("  total: %.1f s (paper: ~30 s; weekly, background)\n",
                (setup_ms + blind_ms) / 1000.0);
    std::printf("  (checksum %u)\n", blind[0]);
  }

  std::printf("\n== OPRF URL -> ad-ID mapping ==\n");
  for (const std::size_t bits : {256u, 512u, 1024u}) {
    util::Rng rng(7);
    const auto t0 = Clock::now();
    const crypto::OprfServer server(rng, bits);
    const double keygen_ms = ms_since(t0);
    client::OprfUrlMapper mapper(server, 100'000, 9);
    const auto t1 = Clock::now();
    constexpr int kEvals = 20;
    for (int i = 0; i < kEvals; ++i)
      (void)mapper.map("https://ads.example.test/creative/" +
                       std::to_string(i));
    const double per_eval = ms_since(t1) / kEvals;
    std::printf("  RSA-%-5zu keygen %7.1f ms | blind+eval+unblind %6.2f "
                "ms/ad | wire %zu B (2 group elements)%s\n",
                bits, keygen_ms, per_eval,
                mapper.bytes_exchanged() / mapper.cache_size(),
                bits == 1024 ? "  (paper: <500 ms)" : "");
    json.add({.op = "oprf_map",
              .modulus_bits = bits,
              .ns_per_op = per_eval * 1e6,
              .backend = kernel,
              .cores = 1});
  }

  std::printf("\n== Batched OPRF warm-up (one frame vs one trip per URL) ==\n");
  {
    util::Rng rng(7);
    const crypto::OprfServer server(rng, 512);
    constexpr int kUrls = 64;
    std::vector<std::string> urls;
    for (int i = 0; i < kUrls; ++i)
      urls.push_back("https://ads.example.test/batch/" + std::to_string(i));

    client::OprfUrlMapper serial(server, 100'000, 21);
    const auto t0 = Clock::now();
    for (const auto& u : urls) (void)serial.map(u);
    const double serial_ms = ms_since(t0);

    client::OprfUrlMapper batched(server, 100'000, 22);
    const auto t1 = Clock::now();
    (void)batched.map_batch(urls);
    const double batch_ms = ms_since(t1);
    json.add({.op = "oprf_map_batch",
              .modulus_bits = 512,
              .ns_per_op = batch_ms * 1e6 / kUrls,
              .backend = kernel,
              .cores = 1});

    std::printf("  map() x %d:      %8.1f ms, %4llu round trips, %6llu wire B\n",
                kUrls, serial_ms,
                static_cast<unsigned long long>(
                    serial.transport_stats().round_trips()),
                static_cast<unsigned long long>(
                    serial.transport_stats().total_bytes()));
    std::printf("  map_batch(%d):   %8.1f ms, %4llu round trip,  %6llu wire B "
                "(%.0fx fewer trips, %.1f%% fewer bytes)\n",
                kUrls, batch_ms,
                static_cast<unsigned long long>(
                    batched.transport_stats().round_trips()),
                static_cast<unsigned long long>(
                    batched.transport_stats().total_bytes()),
                static_cast<double>(serial.transport_stats().round_trips()) /
                    static_cast<double>(
                        batched.transport_stats().round_trips()),
                100.0 *
                    (1.0 -
                     static_cast<double>(
                         batched.transport_stats().total_bytes()) /
                         static_cast<double>(
                             serial.transport_stats().total_bytes())));
  }

  std::printf("\n== Full weekly round, end to end (60 clients) ==\n");
  {
    util::Rng rng(11);
    const crypto::DhGroup group = crypto::DhGroup::generate(rng, 256);
    const crypto::OprfServer oprf(rng, 256);
    client::OprfUrlMapper mapper(oprf, 10'000, 13);
    const auto params = sketch::CmsParams::from_error_bounds(2'000, 0.005, 0.005);
    const client::ExtensionConfig ecfg{
        .detector = {}, .cms_params = params, .cms_hash_seed = 3};
    std::vector<client::BrowserExtension> exts;
    for (core::UserId u = 0; u < 60; ++u) exts.emplace_back(u, ecfg, mapper);
    // Every client saw ~35 unique ads.
    for (auto& e : exts) {
      for (int a = 0; a < 35; ++a) {
        e.observe_ad("https://ad.test/" +
                         std::to_string((e.user() * 7 + a * 13) % 900),
                     static_cast<core::DomainId>(a % 9), 0);
      }
    }
    server::BackendServer backend({.cms_params = params,
                                   .cms_hash_seed = 3,
                                   .id_space = 10'000,
                                   .users_rule = core::ThresholdRule::kMean});
    server::RoundCoordinator coordinator(
        group, std::span<client::BrowserExtension>(exts), backend, 17);
    const auto t0 = Clock::now();
    const auto round = coordinator.run_full_round(0);
    const double round_ms = ms_since(t0);
    std::printf("  round wall time: %.1f ms, Users_th=%.2f\n", round_ms,
                round.users_threshold);

    // Exact encoded wire bytes per phase — read off the transports — next
    // to the closed-form estimates the paper's Section 7.1 accounting
    // implies (roster = group elements up + down, reports = 4 B/cell,
    // thresholds = 8 B/client). The delta is envelope framing + acks: the
    // honest cost of a real protocol that the estimates hide.
    const std::size_t n = exts.size();
    const auto& traffic = coordinator.traffic();
    const struct {
      const char* name;
      std::size_t measured;
      std::size_t estimate;
    } rows[] = {
        {"roster", traffic.roster_bytes, crypto::roster_bytes(group, n)},
        {"reports", traffic.report_bytes, n * params.bytes()},
        {"adjustments", traffic.adjustment_bytes, std::size_t{0}},
        {"thresholds", traffic.threshold_bytes, 8 * n},
    };
    std::printf("  %-12s %12s %12s %10s\n", "phase", "measured B",
                "estimate B", "delta");
    std::size_t measured_total = 0, estimate_total = 0;
    for (const auto& row : rows) {
      measured_total += row.measured;
      estimate_total += row.estimate;
      const double delta =
          row.estimate == 0
              ? 0.0
              : 100.0 * (static_cast<double>(row.measured) -
                         static_cast<double>(row.estimate)) /
                    static_cast<double>(row.estimate);
      std::printf("  %-12s %12zu %12zu %+9.2f%%\n", row.name, row.measured,
                  row.estimate, delta);
    }
    std::printf("  %-12s %12zu %12zu %+9.2f%%  (framing + acks)\n", "total",
                measured_total, estimate_total,
                100.0 * (static_cast<double>(measured_total) -
                         static_cast<double>(estimate_total)) /
                    static_cast<double>(estimate_total));
    std::printf("  transport cross-check: uplink+downlink = %llu B %s\n",
                static_cast<unsigned long long>(
                    coordinator.uplink_stats().total_bytes() +
                    coordinator.downlink_stats().total_bytes()),
                measured_total == coordinator.uplink_stats().total_bytes() +
                                      coordinator.downlink_stats().total_bytes()
                    ? "(== RoundTraffic.total)"
                    : "(MISMATCH vs RoundTraffic!)");

    // Same round again, but the back-end behind a real socket (localhost
    // TCP via RemoteBackend): the honest cost of deployment over the
    // loopback simulation. Identical fleet + coordinator seed, so the
    // result must be bit-identical; the wire adds the operator control
    // plane (begin/missing/finalize) and 4 B of length framing per frame.
    std::vector<client::BrowserExtension> exts_tcp;
    for (core::UserId u = 0; u < 60; ++u) exts_tcp.emplace_back(u, ecfg, mapper);
    for (auto& e : exts_tcp) {
      for (int a = 0; a < 35; ++a) {
        e.observe_ad("https://ad.test/" +
                         std::to_string((e.user() * 7 + a * 13) % 900),
                     static_cast<core::DomainId>(a % 9), 0);
      }
    }
    server::BackendServer tcp_backend({.cms_params = params,
                                       .cms_hash_seed = 3,
                                       .id_space = 10'000,
                                       .users_rule = core::ThresholdRule::kMean});
    server::BackendEndpoint endpoint(tcp_backend, /*serve_control=*/true);
    eyw::proto::FrameServer frame_server(
        [&](std::span<const std::uint8_t> frame) {
          return endpoint.handle(frame);
        });
    eyw::proto::TcpTransport link("127.0.0.1", frame_server.port());
    server::RemoteBackend remote(link, tcp_backend.config());
    server::RoundCoordinator tcp_coordinator(
        group, std::span<client::BrowserExtension>(exts_tcp), remote, 17);
    const auto t2 = Clock::now();
    const auto tcp_round = tcp_coordinator.run_full_round(0);
    const double tcp_ms = ms_since(t2);
    const auto& ls = link.stats();
    const std::uint64_t frames = ls.messages_sent + ls.messages_received;
    // The socket carries the uplink phases plus the operator control
    // plane; roster/threshold distribution happens client-side in both
    // runs, so RoundTraffic (all four phases) must match exactly.
    std::printf("\n  loopback vs TCP deployment (same 60-client round):\n");
    std::printf("  %-10s %10s %15s %12s %18s\n", "path", "round ms",
                "RoundTraffic B", "socket B", "framing B (4/frm)");
    std::printf("  %-10s %10.1f %15zu %12s %18s\n", "loopback", round_ms,
                measured_total, "-", "-");
    std::printf("  %-10s %10.1f %15zu %12llu %12llu (%.2f%%)\n", "tcp",
                tcp_ms, tcp_coordinator.traffic().total(),
                static_cast<unsigned long long>(ls.total_bytes()),
                static_cast<unsigned long long>(4 * frames),
                100.0 * static_cast<double>(4 * frames) /
                    static_cast<double>(ls.total_bytes()));
    const auto loop_cells = round.aggregate.cells();
    const auto tcp_cells = tcp_round.aggregate.cells();
    bool identical =
        loop_cells.size() == tcp_cells.size() &&
        round.users_threshold == tcp_round.users_threshold &&
        round.distribution.counts() == tcp_round.distribution.counts();
    for (std::size_t m = 0; identical && m < loop_cells.size(); ++m)
      identical = loop_cells[m] == tcp_cells[m];
    std::printf("  round result %s (Users_th %.2f vs %.2f)\n",
                identical ? "bit-identical (cells+distribution+threshold)"
                          : "MISMATCH",
                round.users_threshold, tcp_round.users_threshold);
    if (!identical) return 1;
  }

  std::printf("\n== Transport concurrency: thread-per-connection vs "
              "reactor ==\n");
  {
    // Same workload against both concurrency models: C concurrent
    // connections each holding an outstanding request per wave, small
    // envelopes (the protocol's dominant frame count). The baseline
    // thread count is sampled first so only transport threads are
    // attributed to each row.
    const std::size_t kConns = 128;
    const int kRounds = 4;
    const auto ack_handler = [](std::span<const std::uint8_t> frame) {
      (void)eyw::proto::decode_envelope(frame);
      return eyw::proto::encode_ack();
    };
    const std::size_t base_threads = process_threads();

    ConcurrencyRow threaded;
    {
      ThreadPerConnServer server(ack_handler);
      threaded = drive_connections(server.port(), kConns, kRounds);
    }
    ConcurrencyRow reactor;
    std::size_t reactor_shards = 0;
    {
      eyw::proto::FrameServer server(ack_handler,
                                     {.backlog = 256,
                                      .max_connections = kConns + 8});
      reactor_shards = server.shards();
      reactor = drive_connections(server.port(), kConns, kRounds);
    }

    std::printf("  %zu connections x %d waves, %zu exchanges (client side "
                "included in thread counts):\n",
                kConns, kRounds, threaded.exchanges);
    std::printf("  %-18s %10s %14s %18s\n", "model", "wall ms",
                "exchanges/s", "transport threads");
    std::printf("  %-18s %10.1f %14.0f %18zu\n", "thread-per-conn",
                threaded.wall_ms,
                1000.0 * static_cast<double>(threaded.exchanges) /
                    threaded.wall_ms,
                threaded.peak_threads - base_threads);
    std::printf("  %-18s %10.1f %14.0f %18zu  (= %zu shard(s) + "
                "acceptor)\n",
                "reactor", reactor.wall_ms,
                1000.0 * static_cast<double>(reactor.exchanges) /
                    reactor.wall_ms,
                reactor.peak_threads - base_threads, reactor_shards);
    if (threaded.exchanges != reactor.exchanges ||
        reactor.exchanges != kConns * static_cast<std::size_t>(kRounds)) {
      std::printf("  MISMATCH: exchange counts differ\n");
      return 1;
    }

    // Outbound side of the same story: one process *driving* R reporter
    // connections. Thread-per-link (one blocking TcpTransport on its own
    // thread per reporter — the only way to hold R exchanges in flight
    // with the sync client) vs R ClientReactor channels pipelined on 2
    // shard threads. Every reporter connects, holds one in-flight
    // exchange, and stays connected until all have finished, so peak
    // thread counts are sampled at full swarm width (numbers recorded in
    // docs/perf.md).
    std::printf("\n  outbound driver at swarm width (1 exchange/reporter, "
                "all concurrent):\n");
    std::printf("  %-9s %-18s %10s %20s %12s\n", "reporters", "model",
                "wall ms", "client threads", "wire KB");
    for (const std::size_t reporters : {128u, 512u, 1024u}) {
      // Backlog sized to the swarm: the reactor client fires all R
      // connects in the same instant, and a SYN dropped off a full accept
      // queue costs a 1 s kernel retransmit — an operator knob, not a
      // transport property (see docs/protocol.md, scaling knobs).
      eyw::proto::FrameServer swarm_server(
          ack_handler,
          {.backlog = static_cast<int>(reporters + 8),
           .max_connections = reporters + 8});
      const auto ping = eyw::proto::encode_oprf_key_query();

      {
        const std::size_t base = process_threads();
        std::atomic<std::size_t> finished{0};
        std::atomic<std::size_t> ok{0};
        std::atomic<std::uint64_t> wire_bytes{0};
        // Everyone (workers + sampler) parks here until the last reporter
        // has its reply, keeping all R connections simultaneously open.
        std::latch hold(static_cast<std::ptrdiff_t>(reporters) + 1);
        const auto t0 = Clock::now();
        std::vector<std::thread> links;
        links.reserve(reporters);
        for (std::size_t i = 0; i < reporters; ++i) {
          links.emplace_back([&] {
            try {
              eyw::proto::TcpTransport link("127.0.0.1",
                                            swarm_server.port());
              const auto reply = link.exchange(ping);
              wire_bytes.fetch_add(ping.size() + reply.size(),
                                   std::memory_order_relaxed);
              if (!reply.empty()) ok.fetch_add(1);
              finished.fetch_add(1);
              hold.arrive_and_wait();
            } catch (const std::exception&) {
              finished.fetch_add(1);  // failed links count too: no hang
              hold.count_down();
            }
          });
        }
        std::size_t peak = process_threads();
        while (finished.load(std::memory_order_relaxed) < reporters) {
          peak = std::max(peak, process_threads());
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        peak = std::max(peak, process_threads());
        const double wall = ms_since(t0);
        hold.arrive_and_wait();
        for (auto& t : links) t.join();
        if (ok.load() != reporters)
          std::printf("  (%zu/%zu thread-per-link exchanges failed)\n",
                      reporters - ok.load(), reporters);
        std::printf("  %-9zu %-18s %10.1f %20zu %12.1f\n", reporters,
                    "thread-per-link", wall, peak - base,
                    static_cast<double>(wire_bytes.load()) / 1000.0);
      }

      // Let the server fully release the previous model's connections:
      // otherwise this row's connect burst can land on top of them,
      // trip the admission cap, and skew the comparison.
      for (int spin = 0;
           spin < 5'000 && swarm_server.active_connections() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

      {
        const std::size_t base = process_threads();
        eyw::proto::ClientReactor reactor(
            {.shards = 2, .backoff_jitter_seed = 3});
        std::mutex mu;
        std::condition_variable cv;
        std::size_t done = 0;
        std::atomic<std::size_t> acked{0};
        const auto t0 = Clock::now();
        std::vector<std::shared_ptr<eyw::proto::ClientChannel>> channels;
        channels.reserve(reporters);
        for (std::size_t i = 0; i < reporters; ++i)
          channels.push_back(
              reactor.open("127.0.0.1", swarm_server.port()));
        for (std::size_t i = 0; i < reporters; ++i) {
          channels[i]->exchange_async(
              ping, [&](eyw::proto::AsyncResult r) {
                if (r.ok() && !r.reply.empty()) acked.fetch_add(1);
                std::lock_guard<std::mutex> lock(mu);
                ++done;
                cv.notify_one();
              });
        }
        const std::size_t peak = process_threads();
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return done == reporters; });
        }
        const double wall = ms_since(t0);
        std::uint64_t wire_bytes = 0;
        for (const auto& ch : channels) {
          const auto s = ch->stats();
          wire_bytes += s.bytes_sent + s.bytes_received;
        }
        if (acked.load() != reporters)
          std::printf("  (%zu/%zu client-reactor exchanges lost their "
                      "reply; %llu refused at the admission cap)\n",
                      reporters - acked.load(), reporters,
                      static_cast<unsigned long long>(
                          swarm_server.connections_refused()));
        std::printf("  %-9zu %-18s %10.1f %17zu =%zu %12.1f\n", reporters,
                    "client-reactor", wall,
                    std::max(peak, process_threads()) - base,
                    reactor.shards(),
                    static_cast<double>(wire_bytes) / 1000.0);
      }
    }

    // TCP_NODELAY before/after on one sequential request/reply channel:
    // what Nagle + delayed-ACK coalescing costs a small-envelope exchange
    // (numbers recorded in docs/perf.md).
    const int kPings = 200;
    double nodelay_ms[2] = {0.0, 0.0};
    for (const bool nodelay : {false, true}) {
      eyw::proto::FrameServer server(
          ack_handler, {.tcp_nodelay = nodelay});
      eyw::proto::TcpTransport client(
          "127.0.0.1", server.port(),
          {.tcp_nodelay = nodelay});
      const auto ping = eyw::proto::encode_oprf_key_query();
      const auto t0 = Clock::now();
      for (int i = 0; i < kPings; ++i) (void)client.exchange(ping);
      nodelay_ms[nodelay ? 1 : 0] = ms_since(t0);
    }
    std::printf("  TCP_NODELAY off: %7.3f ms/exchange | on: %7.3f "
                "ms/exchange (%d sequential small-envelope round trips)\n",
                nodelay_ms[0] / kPings, nodelay_ms[1] / kPings, kPings);
  }

  std::printf("\n== Channel multiplexing: socket-per-reporter vs mux "
              "streams ==\n");
  {
    // The quickstart swarm, measured: the same N-reporter synthetic round
    // (begin, N BlindedReports, missing barrier, finalize) driven once
    // with one socket per reporter (the PR 4 shape) and once with N
    // logical streams fanned over 8 mux-negotiated connections with a
    // sliding completion-chained window (PR 9). Identical inputs, so the
    // two finalizes must be bit-identical; the table records what the
    // multiplexer costs (or saves) per reporter and what it does to the
    // process's fd footprint at full swarm width (numbers recorded in
    // docs/perf.md, rows in the perf-trajectory json).
    namespace server = eyw::server;
    const server::BackendConfig config = durable_bench_config();

    struct SwarmRow {
      double wall_ms = 0.0;
      std::size_t acked = 0;
      std::size_t fds = 0;  // open fds with the whole swarm in flight
      std::optional<server::RoundResult> result;
    };

    const auto run_swarm = [&config](std::size_t n, bool use_mux) {
      constexpr std::size_t kMuxConns = 8;
      constexpr std::size_t kWindow = 2048;
      server::BackendCluster cluster(config, 2);
      server::BackendEndpoint endpoint(cluster, &cluster,
                                       /*serve_control=*/true);
      server::AsyncDispatcher dispatcher(
          [&](std::span<const std::uint8_t> frame) {
            return endpoint.handle(frame);
          },
          2, server::cluster_lane_router(cluster),
          server::control_plane_barrier(),
          server::DispatcherLimits{.max_lane_depth = 8192,
                                   .retry_after_ms = 25,
                                   .counters = &endpoint.counters()});
      eyw::proto::FrameServer frame_server(
          dispatcher.handler(),
          {.backlog = static_cast<int>(std::max<std::size_t>(256, n + 8)),
           .max_connections = (use_mux ? kMuxConns : n) + 8});
      dispatcher.set_frame_recycler(frame_server.frame_recycler());
      eyw::proto::ClientReactor reactor(
          {.shards = 2, .backoff_jitter_seed = 9});
      auto control = reactor.open("127.0.0.1", frame_server.port());
      server::RemoteBackend remote(*control, config);

      SwarmRow row;
      std::mutex mu;
      std::condition_variable cv;
      std::size_t done = 0;
      const auto on_ack = [&](eyw::proto::AsyncResult res) {
        const bool ok = res.ok() && !res.reply.empty();
        std::lock_guard<std::mutex> lock(mu);
        if (ok) ++row.acked;
        if (++done == n) cv.notify_one();
      };
      const auto frame_for = [&config](std::size_t i) {
        return eyw::proto::BlindedReport{
                   .participant = static_cast<std::uint32_t>(i),
                   .params = config.cms_params,
                   .cells =
                       durable_bench_cells(i, config.cms_params.cells())}
            .encode(/*round=*/1);
      };
      const auto t0 = Clock::now();
      remote.begin_round(/*round=*/1, n);
      std::vector<std::shared_ptr<eyw::proto::ClientChannel>> channels;
      std::vector<std::shared_ptr<eyw::proto::MuxChannel>> muxes;
      std::atomic<std::size_t> next{0};
      std::function<void(std::size_t)> submit;
      if (use_mux) {
        for (std::size_t k = 0; k < std::min(kMuxConns, n); ++k)
          muxes.push_back(
              reactor.open_mux("127.0.0.1", frame_server.port()));
        submit = [&, n](std::size_t i) {
          auto stream = muxes[i % muxes.size()]->open_stream();
          auto* raw = stream.get();
          raw->exchange_async(frame_for(i),
                              [&, stream](eyw::proto::AsyncResult r) {
                                // Chain first, account last (the final
                                // on_ack releases the main thread).
                                const std::size_t j = next.fetch_add(
                                    1, std::memory_order_relaxed);
                                if (j < n) submit(j);
                                on_ack(std::move(r));
                              });
        };
        const std::size_t prime = std::min(kWindow, n);
        next.store(prime, std::memory_order_relaxed);
        for (std::size_t i = 0; i < prime; ++i) submit(i);
      } else {
        channels.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
          channels.push_back(
              reactor.open("127.0.0.1", frame_server.port()));
        for (std::size_t i = 0; i < n; ++i)
          channels[i]->exchange_async(frame_for(i), on_ack);
      }
      row.fds = eyw::scenario::open_fds();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done == n; });
      }
      (void)remote.missing_participants();
      row.result = remote.finalize_round();
      row.wall_ms = ms_since(t0);
      return row;
    };

    std::printf("  %-9s %-20s %10s %12s %10s\n", "reporters", "model",
                "wall ms", "us/reporter", "open fds");
    bool mux_identical = true;
    for (const std::size_t n : {1'024u, 4'096u, 8'192u}) {
      const SwarmRow socket = run_swarm(n, false);
      const SwarmRow mux = run_swarm(n, true);
      const bool identical =
          socket.result.has_value() && mux.result.has_value() &&
          eyw::scenario::results_identical(*socket.result, *mux.result) &&
          socket.acked == n && mux.acked == n;
      mux_identical = mux_identical && identical;
      std::printf("  %-9zu %-20s %10.1f %12.2f %10zu\n", n,
                  "socket-per-reporter", socket.wall_ms,
                  1000.0 * socket.wall_ms / static_cast<double>(n),
                  socket.fds);
      std::printf("  %-9zu %-20s %10.1f %12.2f %10zu  finalize %s\n", n,
                  "mux-8-connections", mux.wall_ms,
                  1000.0 * mux.wall_ms / static_cast<double>(n), mux.fds,
                  identical ? "bit-identical" : "MISMATCH (FAIL)");
      json.add({.op = "swarm_socket_per_reporter_" + std::to_string(n),
                .modulus_bits = 0,
                .ns_per_op =
                    socket.wall_ms * 1e6 / static_cast<double>(n),
                .backend = kernel,
                .cores = 2});
      json.add({.op = "swarm_mux_" + std::to_string(n),
                .modulus_bits = 0,
                .ns_per_op = mux.wall_ms * 1e6 / static_cast<double>(n),
                .backend = kernel,
                .cores = 2});
    }
    if (!mux_identical) {
      std::printf("  MISMATCH: mux and socket-per-reporter rounds "
                  "diverged\n");
      return 1;
    }
  }

  std::printf("\n== Durability: write-ahead journal under the 128-reporter "
              "round ==\n");
  {
    // Each round shape runs three ways: no journal, group-commit journal
    // (acks return once enqueued; the phase barriers fsync), and
    // fsync-per-submit (every ack is an on-disk guarantee). Best-of-N
    // walls, identical synthetic inputs — so within a shape the rows
    // differ only in what durability costs, and all three must land on
    // the same Users_th.
    //
    // The FULL round is the deployment shape the 15% budget is judged
    // against: reporters pay their per-round pad derivation and reports
    // arrive spread across it, so the journal writer commits concurrently
    // with client compute. The BURST round (pre-encoded frames, zero
    // client compute) is the adversarial arrival pattern: every record
    // lands at once and the barrier pays the whole commit serially — it
    // exists to show what group commit amortizes, not to model a round.
    const int kFullRounds = 3;
    const int kBurstRounds = 5;
    const BlindingSwarm swarm = make_blinding_swarm(128);

    char dirs[4][40] = {"eyw-bench-journal-full-batch.XXXXXX",
                        "eyw-bench-journal-full-sync.XXXXXX",
                        "eyw-bench-journal-burst-batch.XXXXXX",
                        "eyw-bench-journal-burst-sync.XXXXXX"};
    for (char* dir : dirs) {
      if (mkdtemp(dir) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 1;
      }
    }
    const DurableRoundRow full_off =
        run_durable_rounds("", false, kFullRounds, &swarm);
    const DurableRoundRow full_batch =
        run_durable_rounds(dirs[0], false, kFullRounds, &swarm);
    const DurableRoundRow full_sync =
        run_durable_rounds(dirs[1], true, kFullRounds, &swarm);
    const DurableRoundRow burst_off =
        run_durable_rounds("", false, kBurstRounds, nullptr);
    const DurableRoundRow burst_batch =
        run_durable_rounds(dirs[2], false, kBurstRounds, nullptr);
    const DurableRoundRow burst_sync =
        run_durable_rounds(dirs[3], true, kBurstRounds, nullptr);
    for (const char* dir : dirs) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }

    const auto print_header = [] {
      std::printf("  %-16s %10s %12s %9s %8s %8s %14s\n", "journal",
                  "round ms", "us/report", "records", "fsyncs", "ckpts",
                  "off-writer I/O");
    };
    const auto print_row = [](const char* name, const DurableRoundRow& r,
                              bool journaled) {
      std::printf("  %-16s %10.1f %12.1f", name, r.wall_ms,
                  1000.0 * r.wall_ms / 128.0);
      if (journaled)
        std::printf(" %9llu %8llu %8llu %14llu\n",
                    static_cast<unsigned long long>(r.stats.records),
                    static_cast<unsigned long long>(r.stats.fsyncs),
                    static_cast<unsigned long long>(r.stats.checkpoints),
                    static_cast<unsigned long long>(r.stats.off_writer_io));
      else
        std::printf(" %9s %8s %8s %14s\n", "-", "-", "-", "-");
    };
    std::printf("  full protocol round (per-round pad derivation + blinded "
                "submit):\n");
    print_header();
    print_row("off", full_off, false);
    print_row("group-commit", full_batch, true);
    print_row("fsync-each", full_sync, true);
    const double overhead =
        100.0 * (full_batch.wall_ms - full_off.wall_ms) / full_off.wall_ms;
    std::printf("  group-commit overhead vs journal-off: %+.1f%% wall "
                "(budget 15%%) — %s\n",
                overhead, overhead <= 15.0 ? "PASS" : "OVER BUDGET");

    std::printf("\n  burst pressure (pre-encoded frames, no client "
                "compute):\n");
    print_header();
    print_row("off", burst_off, false);
    print_row("group-commit", burst_batch, true);
    print_row("fsync-each", burst_sync, true);
    std::printf("  group commit under burst: %llu records in %llu fsyncs "
                "(%.1f records/fsync; fsync-each needed %llu) over %d "
                "rounds\n",
                static_cast<unsigned long long>(burst_batch.stats.records),
                static_cast<unsigned long long>(burst_batch.stats.fsyncs),
                burst_batch.stats.fsyncs > 0
                    ? static_cast<double>(burst_batch.stats.records) /
                          static_cast<double>(burst_batch.stats.fsyncs)
                    : 0.0,
                static_cast<unsigned long long>(burst_sync.stats.fsyncs),
                kBurstRounds);

    const auto trio_agrees = [](const DurableRoundRow& a,
                                const DurableRoundRow& b,
                                const DurableRoundRow& c) {
      return a.users_threshold == b.users_threshold &&
             a.users_threshold == c.users_threshold && a.reports == 128 &&
             b.reports == 128 && c.reports == 128 && a.acked == 128 &&
             b.acked == 128 && c.acked == 128;
    };
    const bool results_agree = trio_agrees(full_off, full_batch, full_sync) &&
                               trio_agrees(burst_off, burst_batch, burst_sync);
    const bool hot_path_clean = full_batch.stats.off_writer_io == 0 &&
                                full_sync.stats.off_writer_io == 0 &&
                                burst_batch.stats.off_writer_io == 0 &&
                                burst_sync.stats.off_writer_io == 0;
    std::printf("  results identical across modes: %s | journal I/O off "
                "the reactor threads: %s\n",
                results_agree ? "yes" : "NO (FAIL)",
                hot_path_clean ? "yes (0 off-writer calls)" : "NO (FAIL)");
    if (!results_agree || !hot_path_clean) return 1;

    json.add({.op = "round_128_journal_off",
              .modulus_bits = 256,
              .ns_per_op = full_off.wall_ms * 1e6 / 128.0,
              .backend = kernel});
    json.add({.op = "round_128_journal_group_commit",
              .modulus_bits = 256,
              .ns_per_op = full_batch.wall_ms * 1e6 / 128.0,
              .backend = kernel});
    json.add({.op = "round_128_journal_fsync_each",
              .modulus_bits = 256,
              .ns_per_op = full_sync.wall_ms * 1e6 / 128.0,
              .backend = kernel});
    json.add({.op = "burst_128_journal_off",
              .modulus_bits = 256,
              .ns_per_op = burst_off.wall_ms * 1e6 / 128.0,
              .backend = kernel});
    json.add({.op = "burst_128_journal_group_commit",
              .modulus_bits = 256,
              .ns_per_op = burst_batch.wall_ms * 1e6 / 128.0,
              .backend = kernel});
    json.add({.op = "burst_128_journal_fsync_each",
              .modulus_bits = 256,
              .ns_per_op = burst_sync.wall_ms * 1e6 / 128.0,
              .backend = kernel});
  }

  std::printf("\n== Parallel round pipeline scaling (120 clients) ==\n");
  {
    // Same workload per thread count; the pipeline is deterministic, so
    // every configuration must land on the same Users_th (printed as a
    // cross-check). reports/s counts blinded-report construction +
    // submission + adjustment + finalize, i.e. the whole round.
    util::Rng rng(29);
    const crypto::DhGroup group = crypto::DhGroup::generate(rng, 256);
    const auto params = sketch::CmsParams::from_error_bounds(2'000, 0.005, 0.005);
    const client::ExtensionConfig ecfg{
        .detector = {}, .cms_params = params, .cms_hash_seed = 3};
    client::HashUrlMapper mapper(10'000);
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::size_t> thread_counts{1};
    if (hw >= 2) thread_counts.push_back(2);
    if (hw > 2) thread_counts.push_back(hw);
    for (const std::size_t threads : thread_counts) {
      std::vector<client::BrowserExtension> exts;
      for (core::UserId u = 0; u < 120; ++u) exts.emplace_back(u, ecfg, mapper);
      for (auto& e : exts) {
        for (int a = 0; a < 35; ++a) {
          e.observe_ad("https://ad.test/" +
                           std::to_string((e.user() * 7 + a * 13) % 900),
                       static_cast<core::DomainId>(a % 9), 0);
        }
      }
      server::BackendServer backend({.cms_params = params,
                                     .cms_hash_seed = 3,
                                     .id_space = 100'000,
                                     .users_rule = core::ThresholdRule::kMean});
      server::RoundCoordinator coordinator(
          group, std::span<client::BrowserExtension>(exts), backend, 17,
          threads);
      const auto t0 = Clock::now();
      const auto round = coordinator.run_full_round(0);
      const double round_ms = ms_since(t0);
      // Finalize alone (the id-space scan): rerun it on the warm backend.
      const auto t1 = Clock::now();
      (void)backend.finalize_round();
      const double finalize_ms = ms_since(t1);
      std::printf(
          "  threads=%-3zu round %8.1f ms (%7.1f reports/s) | finalize "
          "%6.1f ms (100k-id scan) | Users_th=%.3f\n",
          threads, round_ms, 120.0 * 1000.0 / round_ms, finalize_ms,
          round.users_threshold);
      json.add({.op = "round_pipeline_report",
                .modulus_bits = 256,
                .ns_per_op = round_ms * 1e6 / 120.0,
                .backend = kernel,
                .cores = threads});
    }
  }

  if (!json_path.empty()) {
    if (json.write(json_path))
      std::printf("\nwrote trajectory to %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  return 0;
}
