// Sketch-structure ablation (DESIGN.md §6): count-min sketch vs spectral
// bloom filter — update/query cost and, via counters, estimation error at
// equal memory. The CMS is the structure the paper deploys because
// cell-wise addition composes with additive blinding.
#include <benchmark/benchmark.h>

#include <map>

#include "sketch/count_min.hpp"
#include "sketch/spectral_bloom.hpp"
#include "util/rng.hpp"

namespace {
using namespace eyw;

void BM_CmsUpdate(benchmark::State& state) {
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(2);
  for (auto _ : state) cms.update(rng.below(10'000));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmsUpdate);

void BM_CmsQuery(benchmark::State& state) {
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) cms.update(rng.below(10'000));
  for (auto _ : state) benchmark::DoNotOptimize(cms.query(rng.below(10'000)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmsQuery);

void BM_SbfUpdateMinIncrease(benchmark::State& state) {
  sketch::SpectralBloom sbf(sketch::SbfParams::from_capacity(10'000, 0.001),
                            1);
  util::Rng rng(4);
  for (auto _ : state) sbf.update(rng.below(10'000));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SbfUpdateMinIncrease);

void BM_ServerIdSpaceEnumeration(benchmark::State& state) {
  // The back-end's finalize step queries every id in [0, |A|).
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(5);
  for (int i = 0; i < 3'500; ++i) cms.update(rng.below(10'000));
  const auto id_space = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    std::uint64_t nonzero = 0;
    for (std::uint64_t id = 0; id < id_space; ++id)
      nonzero += cms.query(id) > 0;
    benchmark::DoNotOptimize(nonzero);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ServerIdSpaceEnumeration)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

/// Error-at-equal-memory comparison, reported through counters.
void BM_ErrorAtEqualMemory(benchmark::State& state) {
  const auto cms_params =
      sketch::CmsParams::from_error_bounds(2'000, 0.005, 0.01);
  // SBF gets the same number of 4-byte cells.
  const sketch::SbfParams sbf_params{.cells = cms_params.cells(), .hashes = 5};
  double cms_err = 0.0, sbf_err = 0.0;
  for (auto _ : state) {
    sketch::CountMinSketch cms(cms_params, 7);
    sketch::SpectralBloom sbf(sbf_params, 7);
    std::map<std::uint64_t, std::uint32_t> truth;
    util::Rng rng(8);
    for (int i = 0; i < 50'000; ++i) {
      const std::uint64_t k = rng.below(5'000);
      cms.update(k);
      sbf.update(k);
      ++truth[k];
    }
    cms_err = sbf_err = 0.0;
    for (const auto& [k, c] : truth) {
      cms_err += cms.query(k) - c;
      sbf_err += sbf.query(k) - c;
    }
    benchmark::DoNotOptimize(cms_err);
  }
  state.counters["cms_total_overcount"] = cms_err;
  state.counters["sbf_total_overcount"] = sbf_err;
}
BENCHMARK(BM_ErrorAtEqualMemory)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
