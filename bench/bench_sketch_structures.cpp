// Sketch-structure ablation (DESIGN.md §6): count-min sketch vs spectral
// bloom filter — update/query cost and, via counters, estimation error at
// equal memory. The CMS is the structure the paper deploys because
// cell-wise addition composes with additive blinding.
//
// `--json <path>` additionally writes the PR-over-PR trajectory rows:
// scalar-vs-AVX2 ns/cell for the sketch kernels (merge, min-scan gather,
// pad fold) and the measured heap allocations per accepted submission on
// the ingest path, zero-copy vs the legacy decode-copy/re-encode chain.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <unistd.h>

#include "bench_json.hpp"
#include "proto/buffer_pool.hpp"
#include "proto/message.hpp"
#include "server/backend.hpp"
#include "server/durable_backend.hpp"
#include "server/endpoint.hpp"
#include "sketch/count_min.hpp"
#include "sketch/sketch_kernel.hpp"
#include "sketch/spectral_bloom.hpp"
#include "util/rng.hpp"

// Heap-allocation probe for the ingest measurement: count operator-new
// calls on the measuring thread only, so the journal writer thread and
// google-benchmark's own bookkeeping stay out of the numbers.
namespace {
thread_local std::uint64_t g_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {
using namespace eyw;

void BM_CmsUpdate(benchmark::State& state) {
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(2);
  for (auto _ : state) cms.update(rng.below(10'000));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmsUpdate);

void BM_CmsQuery(benchmark::State& state) {
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) cms.update(rng.below(10'000));
  for (auto _ : state) benchmark::DoNotOptimize(cms.query(rng.below(10'000)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmsQuery);

void BM_SbfUpdateMinIncrease(benchmark::State& state) {
  sketch::SpectralBloom sbf(sketch::SbfParams::from_capacity(10'000, 0.001),
                            1);
  util::Rng rng(4);
  for (auto _ : state) sbf.update(rng.below(10'000));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SbfUpdateMinIncrease);

void BM_ServerIdSpaceEnumeration(benchmark::State& state) {
  // The back-end's finalize step queries every id in [0, |A|).
  sketch::CountMinSketch cms(
      sketch::CmsParams::from_error_bounds(10'000, 0.001, 0.001), 1);
  util::Rng rng(5);
  for (int i = 0; i < 3'500; ++i) cms.update(rng.below(10'000));
  const auto id_space = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    std::uint64_t nonzero = 0;
    for (std::uint64_t id = 0; id < id_space; ++id)
      nonzero += cms.query(id) > 0;
    benchmark::DoNotOptimize(nonzero);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ServerIdSpaceEnumeration)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

/// Error-at-equal-memory comparison, reported through counters.
void BM_ErrorAtEqualMemory(benchmark::State& state) {
  const auto cms_params =
      sketch::CmsParams::from_error_bounds(2'000, 0.005, 0.01);
  // SBF gets the same number of 4-byte cells.
  const sketch::SbfParams sbf_params{.cells = cms_params.cells(), .hashes = 5};
  double cms_err = 0.0, sbf_err = 0.0;
  for (auto _ : state) {
    sketch::CountMinSketch cms(cms_params, 7);
    sketch::SpectralBloom sbf(sbf_params, 7);
    std::map<std::uint64_t, std::uint32_t> truth;
    util::Rng rng(8);
    for (int i = 0; i < 50'000; ++i) {
      const std::uint64_t k = rng.below(5'000);
      cms.update(k);
      sbf.update(k);
      ++truth[k];
    }
    cms_err = sbf_err = 0.0;
    for (const auto& [k, c] : truth) {
      cms_err += cms.query(k) - c;
      sbf_err += sbf.query(k) - c;
    }
    benchmark::DoNotOptimize(cms_err);
  }
  state.counters["cms_total_overcount"] = cms_err;
  state.counters["sbf_total_overcount"] = sbf_err;
}
BENCHMARK(BM_ErrorAtEqualMemory)->Unit(benchmark::kMillisecond);

// --------------------------------------------------- trajectory artifact
// Self-timed (not via google-benchmark) so the record layout is exactly
// the BENCH_*.json schema: {op, modulus_bits, ns_per_op, backend, cores}.

template <typename F>
double time_ns_per_op(F&& fn, int iters) {
  fn();  // warm caches (and, for the AVX2 rows, the dispatch decision)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

/// Scalar-vs-AVX2 ns/cell for the three kernel primitives the round
/// pipeline leans on: merge (cell-wise wrapping add — finalize and the
/// cluster reduce), min-scan gather (query over the id space), and the
/// pad fold (unblinding). Timed on the paper geometry, 17 x 2719 cells.
void add_kernel_rows(bench::JsonWriter& writer) {
  constexpr std::size_t kCells = 17 * 2719;
  constexpr std::size_t kWidth = 2719;
  constexpr std::size_t kKeys = 256;
  util::Rng rng(21);
  std::vector<std::uint32_t> dst(kCells), src(kCells), row(kWidth);
  for (std::uint32_t& c : src) c = static_cast<std::uint32_t>(rng.next());
  for (std::uint32_t& c : dst) c = static_cast<std::uint32_t>(rng.next());
  for (std::uint32_t& c : row) c = static_cast<std::uint32_t>(rng.next());
  std::vector<std::uint8_t> stream(kCells * 4);
  for (std::uint8_t& b : stream) b = static_cast<std::uint8_t>(rng.next());
  std::vector<std::uint32_t> idx(kKeys), out(kKeys, 0xffffffffu);
  for (std::uint32_t& i : idx)
    i = static_cast<std::uint32_t>(rng.next() % kWidth);

  const sketch::SketchKernel* kernels[] = {&sketch::portable_sketch_kernel(),
                                           sketch::avx2_sketch_kernel()};
  for (const sketch::SketchKernel* k : kernels) {
    if (k == nullptr) continue;  // no AVX2 on this host: portable rows only
    writer.add({.op = "sketch_merge_cells",
                .modulus_bits = 0,
                .ns_per_op = time_ns_per_op(
                                 [&] { k->add_cells(dst.data(), src.data(),
                                                    kCells); },
                                 400) /
                             kCells,
                .backend = k->name,
                .cores = 1});
    writer.add({.op = "sketch_pad_accumulate",
                .modulus_bits = 0,
                .ns_per_op = time_ns_per_op(
                                 [&] {
                                   k->pad_accumulate(dst.data(), stream.data(),
                                                     kCells, true);
                                 },
                                 400) /
                             kCells,
                .backend = k->name,
                .cores = 1});
    // Per key, not per row cell: a query touches `depth` gathers.
    writer.add({.op = "sketch_row_min",
                .modulus_bits = 0,
                .ns_per_op = time_ns_per_op(
                                 [&] {
                                   k->row_min(out.data(), row.data(),
                                              idx.data(), kKeys);
                                 },
                                 20'000) /
                             kKeys,
                .backend = k->name,
                .cores = 1});
  }
}

/// Heap allocations per accepted submission across the full ingest chain
/// (mux frame bytes off the wire -> strip -> decode -> durable submit ->
/// ack), measured with the operator-new probe above. Reporters submit on
/// multiplexed (version-2) connections, so both sides see v2 frames.
/// `zero_copy` runs today's path: pooled frame buffer, in-place stream
/// strip, span-based envelope view, wire-byte journal capture. Otherwise
/// the pre-pool chain is replicated: fresh buffer per frame, copying
/// strip, copying envelope decode, re-encoding durable submit.
double ingest_allocs_per_submission(bool zero_copy) {
  namespace fs = std::filesystem;
  char tmpl[] = "bench-ingest-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) return -1.0;

  constexpr std::size_t kRoster = 512;
  constexpr std::size_t kWarm = 128;
  constexpr std::uint64_t kRound = 1;
  double per_submission = -1.0;
  {
    const server::BackendConfig config{
        .cms_params = {.depth = 4, .width = 256},
        .cms_hash_seed = 3,
        .id_space = 10'000};
    server::BackendServer inner(config);
    server::DurableBackend durable(inner, {.dir = dir});
    server::BackendEndpoint endpoint(durable, nullptr,
                                     /*serve_control=*/true);
    (void)endpoint.handle(
        proto::BeginRound{.roster = kRoster}.encode(kRound));

    const std::size_t cell_count =
        static_cast<std::size_t>(config.cms_params.depth) *
        config.cms_params.width;
    util::Rng rng(31);
    std::vector<std::vector<std::uint8_t>> frames;
    frames.reserve(kRoster);
    for (std::size_t i = 0; i < kRoster; ++i) {
      std::vector<std::uint32_t> cells(cell_count);
      for (std::uint32_t& c : cells)
        c = static_cast<std::uint32_t>(rng.next());
      std::vector<std::uint8_t> frame = proto::BlindedReport{
          .participant = static_cast<std::uint32_t>(i),
          .params = config.cms_params,
          .cells = std::move(cells)}
                                            .encode(kRound);
      // What the server actually receives from a mux reporter.
      proto::add_stream_inplace(frame, static_cast<std::uint32_t>(i) + 1);
      frames.push_back(std::move(frame));
    }

    proto::BufferPool pool;
    const auto submit_one = [&](const std::vector<std::uint8_t>& wire) {
      if (zero_copy) {
        // The reactor's read path: socket bytes land in a pooled buffer,
        // the stream id is patched out in place, the endpoint sees a
        // span over the same buffer, and the buffer goes back.
        std::vector<std::uint8_t> body = pool.acquire(wire.size());
        std::memcpy(body.data(), wire.data(), wire.size());
        (void)proto::strip_stream_inplace(body);
        (void)endpoint.handle(body);
        pool.release(std::move(body));
      } else {
        // Pre-pool ingest: a fresh body allocation per frame, a
        // whole-frame copy to strip the stream id, a copying envelope
        // decode, and a durable submit that re-encodes the report it
        // just decoded.
        const std::vector<std::uint8_t> body(wire.begin(), wire.end());
        const proto::StrippedFrame stripped = proto::strip_stream(body);
        const proto::Envelope env = proto::decode_envelope(stripped.frame);
        proto::BlindedReport report = proto::BlindedReport::decode(env);
        durable.submit_report(report.participant, std::move(report.cells));
        (void)proto::encode_ack();
      }
    };

    for (std::size_t i = 0; i < kWarm; ++i) submit_one(frames[i]);
    const std::uint64_t before = g_thread_allocs;
    for (std::size_t i = kWarm; i < kRoster; ++i) submit_one(frames[i]);
    per_submission = static_cast<double>(g_thread_allocs - before) /
                     static_cast<double>(kRoster - kWarm);
    durable.shutdown();
  }
  fs::remove_all(dir);
  return per_submission;
}

void write_trajectory(const std::string& path) {
  bench::JsonWriter writer;
  add_kernel_rows(writer);
  // The acceptance metric: allocation count rides in ns_per_op (the
  // schema is fixed; the op name disambiguates the unit).
  writer.add({.op = "ingest_allocs_per_submission",
              .modulus_bits = 0,
              .ns_per_op = ingest_allocs_per_submission(/*zero_copy=*/true),
              .backend = "zero_copy",
              .cores = 1});
  writer.add({.op = "ingest_allocs_per_submission",
              .modulus_bits = 0,
              .ns_per_op = ingest_allocs_per_submission(/*zero_copy=*/false),
              .backend = "legacy",
              .cores = 1});
  if (!writer.write(path))
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = eyw::bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_trajectory(json_path);
  return 0;
}
