// Section 7.2.2: false positives from overlapping static campaigns.
//
// Scenario: a niche subset of users happens to co-visit a small set of
// sites that all carry the same static (brand-awareness) campaign. The
// campaign "follows" them across domains without targeting anyone. The
// paper reports misclassification below 2% across 30+ parameter
// configurations; this harness sweeps 36 configurations of the same shape.
#include <algorithm>
#include <cstdio>

#include "analysis/detection_experiment.hpp"

namespace {

using eyw::analysis::DetectionOutcome;
using eyw::core::DetectorConfig;
using eyw::sim::SimConfig;

struct Scenario {
  double static_spread;   // fraction of sites each static campaign covers
  double revisit_bias;    // how clustered browsing is
  std::size_t preferred;  // size of the co-visited site pool
};

}  // namespace

int main() {
  std::printf(
      "Section 7.2.2: false-positive study — static campaigns + clustered "
      "browsing\n");
  std::printf("%-4s %-8s %-8s %-10s %-8s %-9s %-9s %-10s\n", "cfg", "spread",
              "revisit", "preferred", "seed", "FP%", "FN%", "decided");

  const Scenario scenarios[] = {
      // spread, revisit bias, preferred-set size
      {0.005, 0.80, 6},  {0.005, 0.90, 6},  {0.005, 0.80, 10},
      {0.010, 0.80, 6},  {0.010, 0.90, 6},  {0.010, 0.80, 10},
      {0.020, 0.80, 6},  {0.020, 0.90, 6},  {0.020, 0.80, 10},
      {0.050, 0.70, 8},  {0.050, 0.85, 8},  {0.050, 0.70, 12},
  };
  const std::uint64_t seeds[] = {11, 22, 33};

  int cfg_id = 0;
  double worst_fp = 0.0;
  for (const Scenario& sc : scenarios) {
    for (const std::uint64_t seed : seeds) {
      SimConfig cfg;  // Table 1 base
      cfg.static_spread_min = sc.static_spread * 0.5;
      cfg.static_spread_max = sc.static_spread;
      cfg.revisit_bias = sc.revisit_bias;
      cfg.preferred_sites = sc.preferred;
      cfg.seed = 77000 + seed;
      const eyw::sim::SimResult sim = eyw::sim::simulate(cfg);
      const DetectionOutcome outcome =
          eyw::analysis::run_detection(sim, DetectorConfig{});
      const double fp = 100.0 * outcome.confusion.false_positive_rate();
      worst_fp = std::max(worst_fp, fp);
      std::printf("%-4d %-8.3f %-8.2f %-10zu %-8llu %-9.2f %-9.1f %-10zu\n",
                  ++cfg_id, sc.static_spread, sc.revisit_bias, sc.preferred,
                  static_cast<unsigned long long>(seed), fp,
                  100.0 * outcome.confusion.false_negative_rate(),
                  outcome.confusion.decided());
    }
  }
  std::printf(
      "\n%d configurations. Worst-case FP = %.2f%% (paper: <2%% across 30+ "
      "configurations,\nreached only in the most extreme corner).\n",
      cfg_id, worst_fp);
  return 0;
}
