// Figure 4: the live-validation evaluation tree — precision of eyeWnder's
// classification assessed against the crawler (CR), the content-based
// heuristic (CB), and FigureEight labels (F8), with Section 7.3.3's manual
// resolution of the UNKNOWN pools.
//
// Expected shape (paper, 100 users / 3 weeks / 6743 ads): most ads are
// non-targeted; FP(CR) is a small share of targeted verdicts; the UNKNOWN
// pools dominate and mostly resolve to likely-TP / likely-TN; overall
// likely-TP ~78% and likely-TN ~87%.
#include <cstdio>
#include <map>

#include "analysis/content_based.hpp"
#include "analysis/detection_experiment.hpp"
#include "analysis/eval_tree.hpp"
#include "analysis/f8_labeler.hpp"

int main() {
  using namespace eyw;

  sim::SimConfig cfg;
  cfg.num_users = 100;
  cfg.num_websites = 1000;
  cfg.num_campaigns = 200;
  cfg.pct_targeted_ads = 0.25;
  // With only 100 users, a realistic audience segment is a couple of
  // panelists per campaign (the paper's Users_th sits at 2.2-3.3).
  cfg.audience_cohort = 0.25;
  cfg.weeks = 3;
  cfg.frequency_cap = 6;
  cfg.seed = 190703;

  sim::Engine engine(sim::World::build(cfg));
  const sim::SimResult sim = engine.run();
  const analysis::DetectionOutcome detection =
      analysis::run_detection(sim, core::DetectorConfig{});

  // Content-based baseline: profile from the visit log. T is scaled to the
  // simulated catalog (the paper's T=20 is calibrated to the live web).
  analysis::ContentBasedClassifier cb({.min_sites_per_category = 20});
  for (const auto& si : sim.impressions) {
    const auto& site = engine.world().websites[si.impression.domain];
    cb.record_visit(si.impression.user, si.impression.domain, site.category);
  }

  analysis::F8Labeler f8({.coverage = 0.35, .accuracy = 0.85, .seed = 88});

  std::vector<analysis::EvalRecord> records;
  for (const analysis::PairVerdict& pv : detection.verdicts) {
    if (pv.verdict == core::Verdict::kInsufficientData) continue;
    const adnet::Ad* ad = engine.ad_server().find_ad(pv.ad);
    analysis::EvalRecord rec;
    rec.user = pv.user;
    rec.ad = pv.ad;
    rec.eyewnder_targeted = pv.verdict == core::Verdict::kTargeted;
    rec.in_crawler = sim.crawler_ads.contains(pv.ad);
    rec.semantic_overlap =
        cb.has_semantic_overlap(pv.user, ad->offering_category);
    rec.f8_label = f8.label(pv.user, pv.ad, pv.ground_truth_targeted);
    rec.ground_truth_targeted = pv.ground_truth_targeted;
    records.push_back(rec);
  }

  const analysis::EvalTreeResult tree = analysis::evaluate_tree(
      records, {.resolution_accuracy = 0.9, .seed = 4242});
  std::printf("%s", tree.to_report().c_str());

  std::printf(
      "\nShape check vs paper (Fig 4): non-targeted branch dominates; "
      "FP(CR) is a small\nshare of targeted verdicts; overall likely-TP "
      "~78%% and likely-TN ~87%%.\n");
  return 0;
}
