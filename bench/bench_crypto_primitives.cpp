// Micro-benchmarks of the cryptographic substrate (google-benchmark).
// These quantify the primitives behind Section 7.1's overhead numbers at
// full parameter sizes. `--json <path>` additionally writes the
// machine-readable kernel trajectory (see bench_json.hpp) from self-timed
// runs of the tracked operations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "crypto/blinding.hpp"
#include "crypto/mont_kernel.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/oprf.hpp"
#include "crypto/prime.hpp"
#include "sketch/count_min.hpp"

namespace {
using namespace eyw;

void BM_Sha256Throughput(benchmark::State& state) {
  const std::vector<std::uint8_t> buf(
      static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sha256(std::span<const std::uint8_t>(buf.data(), buf.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(1024)->Arg(65536);

// The seed's naive square-and-multiply with full divmod reduction per step.
// Kept as the before-side of the Montgomery speedup comparison.
void BM_BignumModexpReference(benchmark::State& state) {
  util::Rng rng(1);
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(crypto::Bignum(1));
  const crypto::Bignum b = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Bignum e = crypto::Bignum::random_bits(rng, bits - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Bignum::modexp_basic(b, e, m));
  }
}
BENCHMARK(BM_BignumModexpReference)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

// The production path: Bignum::modexp dispatching to the Montgomery CIOS
// core (context built per call, as one-shot callers do).
void BM_BignumModexp(benchmark::State& state) {
  util::Rng rng(1);
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(crypto::Bignum(1));
  const crypto::Bignum b = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Bignum e = crypto::Bignum::random_bits(rng, bits - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Bignum::modexp(b, e, m));
  }
}
BENCHMARK(BM_BignumModexp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

// Montgomery exponentiation with the context amortized across calls, as the
// OPRF server / DH roster loops run it.
void BM_MontgomeryModexp(benchmark::State& state) {
  util::Rng rng(1);
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(crypto::Bignum(1));
  const crypto::Bignum b = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Bignum e = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Montgomery mont(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.modexp(b, e));
  }
}
BENCHMARK(BM_MontgomeryModexp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

// The same ladder pinned to each kernel: the portable/adx speedup at a
// glance, independent of what CPUID picked for the process.
void modexp_kernel_bench(benchmark::State& state,
                         const crypto::MontKernel& kernel) {
  util::Rng rng(1);
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(crypto::Bignum(1));
  const crypto::Bignum b = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Bignum e = crypto::Bignum::random_bits(rng, bits - 1);
  const crypto::Montgomery mont(m, kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.modexp(b, e));
  }
}

void BM_ModexpKernelPortable(benchmark::State& state) {
  modexp_kernel_bench(state, crypto::portable_mont_kernel());
}
BENCHMARK(BM_ModexpKernelPortable)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModexpKernelAdx(benchmark::State& state) {
  const crypto::MontKernel* adx = crypto::adx_mont_kernel();
  if (adx == nullptr) {
    state.SkipWithError("ADX kernel unavailable on this CPU/toolchain");
    return;
  }
  modexp_kernel_bench(state, *adx);
}
BENCHMARK(BM_ModexpKernelAdx)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

// Interleaved lanes vs one ladder at a time; reported per element.
void BM_ModexpBatch8(benchmark::State& state) {
  util::Rng rng(1);
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(crypto::Bignum(1));
  const crypto::Montgomery mont(m);
  std::vector<crypto::Bignum> bases, exps;
  for (int i = 0; i < 8; ++i) {
    bases.push_back(crypto::Bignum::random_below(rng, m));
    exps.push_back(crypto::Bignum::random_bits(rng, bits - 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.modexp_batch(bases, exps));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ModexpBatch8)->Arg(512)->Arg(1024)->Arg(2048);

// Fixed-base window table vs the plain ladder for the DH keygen shape.
void BM_DhKeygenFixedBase(benchmark::State& state) {
  util::Rng rng(4);
  const crypto::DhGroup group =
      crypto::DhGroup::generate(rng, static_cast<std::size_t>(state.range(0)));
  const crypto::DhContext ctx(group);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.keygen(rng));
  }
}
BENCHMARK(BM_DhKeygenFixedBase)->Arg(256)->Arg(512);

void BM_DhKeygenPlain(benchmark::State& state) {
  util::Rng rng(4);
  const crypto::DhGroup group =
      crypto::DhGroup::generate(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::dh_keygen(group, rng));
  }
}
BENCHMARK(BM_DhKeygenPlain)->Arg(256)->Arg(512);

// RSA private operation — the protocol's per-report modexp at full modulus
// size — measured three ways: the seed path (naive square-and-multiply with
// divmod reduction), plain d-exponentiation through the Montgomery core,
// and CRT (two half-size Montgomery exponentiations + Garner).
void BM_RsaPrivateSeedPath(benchmark::State& state) {
  util::Rng rng(21);
  const auto key = crypto::rsa_generate(
      rng, static_cast<std::size_t>(state.range(0)));
  const crypto::Bignum x = crypto::Bignum::random_below(rng, key.pub.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::Bignum::modexp_basic(x, key.d, key.pub.n));
  }
}
BENCHMARK(BM_RsaPrivateSeedPath)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_RsaPrivatePlain(benchmark::State& state) {
  util::Rng rng(21);
  const auto key = crypto::rsa_generate(
      rng, static_cast<std::size_t>(state.range(0)));
  crypto::RsaKeyPair plain{.pub = key.pub, .d = key.d};  // no CRT fields
  const crypto::RsaPrivateContext ctx(std::move(plain));
  const crypto::Bignum x = crypto::Bignum::random_below(rng, key.pub.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.private_apply(x));
  }
}
BENCHMARK(BM_RsaPrivatePlain)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_RsaPrivateCrt(benchmark::State& state) {
  util::Rng rng(21);
  const crypto::RsaPrivateContext ctx(crypto::rsa_generate(
      rng, static_cast<std::size_t>(state.range(0))));
  const crypto::Bignum x =
      crypto::Bignum::random_below(rng, ctx.pub().n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.private_apply(x));
  }
}
BENCHMARK(BM_RsaPrivateCrt)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// The back-end's id-space scan: per-id query() vs batched row-major
// query_many with hoisted coefficients and multiply-shift reduction.
void BM_CmsQueryLoop(benchmark::State& state) {
  sketch::CountMinSketch cms({.depth = 17, .width = 2719}, 7);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) cms.update(rng.below(100'000));
  const auto ids = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (std::uint64_t id = 0; id < ids; ++id) sum += cms.query(id);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CmsQueryLoop)->Arg(100'000);

void BM_CmsQueryMany(benchmark::State& state) {
  sketch::CountMinSketch cms({.depth = 17, .width = 2719}, 7);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) cms.update(rng.below(100'000));
  const auto ids = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint32_t> out(ids);
  for (auto _ : state) {
    cms.query_range(0, ids, std::span<std::uint32_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CmsQueryMany)->Arg(100'000);

void BM_MillerRabin(benchmark::State& state) {
  util::Rng rng(2);
  const crypto::Bignum p =
      crypto::generate_prime(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::is_probable_prime(p, rng, 8));
  }
}
BENCHMARK(BM_MillerRabin)->Arg(128)->Arg(256)->Arg(512);

void BM_OprfRoundTrip(benchmark::State& state) {
  util::Rng rng(3);
  const crypto::OprfServer server(rng,
                                  static_cast<std::size_t>(state.range(0)));
  const crypto::OprfClient client(server.public_key());
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string url = "https://ads.test/" + std::to_string(i++);
    const auto blinded = client.blind(url, rng);
    const auto resp = server.evaluate_blinded(blinded.blinded_element);
    benchmark::DoNotOptimize(client.finalize(url, blinded, resp));
  }
}
BENCHMARK(BM_OprfRoundTrip)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_DhSharedSecret(benchmark::State& state) {
  util::Rng rng(4);
  const crypto::DhGroup group =
      crypto::DhGroup::generate(rng, static_cast<std::size_t>(state.range(0)));
  const auto a = crypto::dh_keygen(group, rng);
  const auto b = crypto::dh_keygen(group, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::dh_shared_secret(group, a.private_key, b.public_key));
  }
}
BENCHMARK(BM_DhSharedSecret)->Arg(256)->Arg(512);

void BM_BlindingVector(benchmark::State& state) {
  util::Rng rng(5);
  static const crypto::DhGroup group = crypto::DhGroup::generate(rng, 256);
  const auto peers = static_cast<std::size_t>(state.range(0));
  const auto cells = static_cast<std::size_t>(state.range(1));
  std::vector<crypto::DhKeyPair> keys;
  std::vector<crypto::Bignum> publics;
  for (std::size_t i = 0; i < peers; ++i) {
    keys.push_back(crypto::dh_keygen(group, rng));
    publics.push_back(keys.back().public_key);
  }
  const crypto::BlindingParticipant participant(
      group, 0, keys[0], std::span<const crypto::Bignum>(publics));
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(participant.blinding_vector(cells, round++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells));
}
BENCHMARK(BM_BlindingVector)
    ->Args({16, 5000})
    ->Args({64, 5000})
    ->Args({64, 46223})  // the T=10k paper sketch geometry (17 x 2719)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------- trajectory artifact
// Self-timed (not via google-benchmark) so the record layout is exactly
// the BENCH_*.json schema: {op, modulus_bits, ns_per_op, backend, cores}.

template <typename F>
double time_ns_per_op(F&& fn, int iters) {
  fn();  // warm caches and the shared Montgomery cache
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

void write_trajectory(const std::string& path) {
  bench::JsonWriter writer;
  util::Rng rng(1);

  for (const std::size_t bits : {256, 512, 1024, 2048}) {
    crypto::Bignum m = crypto::Bignum::random_bits(rng, bits);
    if (!m.is_odd()) m = m.add(crypto::Bignum(1));
    const crypto::Bignum b = crypto::Bignum::random_bits(rng, bits - 1);
    const crypto::Bignum e = crypto::Bignum::random_bits(rng, bits - 1);
    const int iters = bits >= 2048 ? 20 : bits >= 1024 ? 60 : 200;

    const crypto::Montgomery portable(m, crypto::portable_mont_kernel());
    writer.add({.op = "modexp",
                .modulus_bits = bits,
                .ns_per_op = time_ns_per_op(
                    [&] { benchmark::DoNotOptimize(portable.modexp(b, e)); },
                    iters),
                .backend = "portable",
                .cores = 1});
    if (const crypto::MontKernel* adx = crypto::adx_mont_kernel()) {
      const crypto::Montgomery fast(m, *adx);
      writer.add({.op = "modexp",
                  .modulus_bits = bits,
                  .ns_per_op = time_ns_per_op(
                      [&] { benchmark::DoNotOptimize(fast.modexp(b, e)); },
                      iters),
                  .backend = "adx",
                  .cores = 1});
    }

    // Batch of 8 interleaved lanes, per element, on the active kernel.
    const crypto::Montgomery active(m);
    std::vector<crypto::Bignum> bases, exps;
    for (int i = 0; i < 8; ++i) {
      bases.push_back(crypto::Bignum::random_below(rng, m));
      exps.push_back(crypto::Bignum::random_bits(rng, bits - 1));
    }
    writer.add(
        {.op = "modexp_batch8",
         .modulus_bits = bits,
         .ns_per_op =
             time_ns_per_op(
                 [&] {
                   benchmark::DoNotOptimize(active.modexp_batch(bases, exps));
                 },
                 std::max(1, iters / 8)) /
             8.0,
         .backend = active.kernel_name(),
         .cores = 1});
  }

  // OPRF round trip (blind + evaluate + finalize) at protocol sizes.
  for (const std::size_t bits : {512, 1024}) {
    util::Rng orng(3);
    const crypto::OprfServer server(orng, bits);
    const crypto::OprfClient client(server.public_key());
    std::uint64_t i = 0;
    writer.add({.op = "oprf_roundtrip",
                .modulus_bits = bits,
                .ns_per_op = time_ns_per_op(
                    [&] {
                      const std::string url =
                          "https://ads.test/" + std::to_string(i++);
                      const auto blinded = client.blind(url, orng);
                      const auto resp =
                          server.evaluate_blinded(blinded.blinded_element);
                      benchmark::DoNotOptimize(
                          client.finalize(url, blinded, resp));
                    },
                    bits >= 1024 ? 10 : 40),
                .backend = crypto::active_mont_kernel().name,
                .cores = 1});
  }

  if (!writer.write(path)) {
    fprintf(stderr, "bench_crypto_primitives: cannot write %s\n",
            path.c_str());
  } else {
    printf("wrote trajectory to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know, so --json comes out
  // of argv before Initialize sees it.
  const std::string json_path = eyw::bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_trajectory(json_path);
  return 0;
}
