#!/usr/bin/env python3
"""Markdown link-and-anchor checker for README.md and docs/.

Verifies that every relative link in the repo's markdown resolves to an
existing file, and that every fragment (`file.md#anchor`, `#anchor`)
matches a heading in the target file under GitHub's slugging rules. Run
from anywhere:

    python3 tools/check_docs.py

Exit code 0 when every link resolves, 1 otherwise (CI fails the build).
External (scheme://) links are not fetched — this guards repo-internal
cross-references against rot, not the internet.
"""
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The documentation surface: top-level markdown plus everything in docs/.
DOC_GLOBS = [
    os.path.join(REPO, name)
    for name in sorted(os.listdir(REPO))
    if name.endswith(".md")
] + [
    os.path.join(REPO, "docs", name)
    for name in sorted(os.listdir(os.path.join(REPO, "docs")))
    if name.endswith(".md")
]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    anchors = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            if slug in seen:
                seen[slug] += 1
                slug = f"{slug}-{seen[slug]}"
            else:
                seen[slug] = 0
            anchors.add(slug)
    return anchors


def check():
    errors = []
    anchor_cache = {}
    for doc in DOC_GLOBS:
        rel_doc = os.path.relpath(doc, REPO)
        in_fence = False
        with open(doc, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if re.match(r"^[a-z][a-z0-9+.-]*://", target) or \
                            target.startswith("mailto:"):
                        continue  # external
                    path_part, _, fragment = target.partition("#")
                    if path_part:
                        resolved = os.path.normpath(
                            os.path.join(os.path.dirname(doc), path_part))
                        if not os.path.exists(resolved):
                            errors.append(
                                f"{rel_doc}:{lineno}: broken link "
                                f"-> {target}")
                            continue
                    else:
                        resolved = doc
                    if fragment:
                        if not resolved.endswith(".md"):
                            continue  # anchors only checked in markdown
                        if resolved not in anchor_cache:
                            anchor_cache[resolved] = anchors_of(resolved)
                        if fragment not in anchor_cache[resolved]:
                            errors.append(
                                f"{rel_doc}:{lineno}: missing anchor "
                                f"#{fragment} in "
                                f"{os.path.relpath(resolved, REPO)}")
    return errors


def main():
    errors = check()
    for err in errors:
        print(err)
    checked = len(DOC_GLOBS)
    if errors:
        print(f"check_docs: {len(errors)} broken reference(s) "
              f"across {checked} file(s)")
        return 1
    print(f"check_docs: OK ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
