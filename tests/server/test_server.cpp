#include <gtest/gtest.h>

#include "server/backend.hpp"
#include "server/database.hpp"
#include "server/round.hpp"

namespace eyw::server {
namespace {

const sketch::CmsParams kParams{.depth = 4, .width = 64};

BackendConfig backend_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 5,
          .id_space = 500,
          .users_rule = core::ThresholdRule::kMean};
}

TEST(Backend, RejectsBadConfig) {
  EXPECT_THROW(BackendServer({.cms_params = kParams, .id_space = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      BackendServer({.cms_params = {.depth = 0, .width = 0}, .id_space = 5}),
      std::invalid_argument);
}

TEST(Backend, ReportValidation) {
  BackendServer b(backend_config());
  b.begin_round(0, 3);
  EXPECT_THROW(b.submit_report(5, std::vector<crypto::BlindCell>(kParams.cells())),
               std::invalid_argument);  // outside roster
  EXPECT_THROW(b.submit_report(0, std::vector<crypto::BlindCell>(7)),
               std::invalid_argument);  // wrong geometry
  b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells()));
  EXPECT_THROW(b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells())),
               std::invalid_argument);  // duplicate
}

TEST(Backend, MissingParticipantsTracked) {
  BackendServer b(backend_config());
  b.begin_round(0, 4);
  b.submit_report(1, std::vector<crypto::BlindCell>(kParams.cells()));
  b.submit_report(3, std::vector<crypto::BlindCell>(kParams.cells()));
  const auto missing = b.missing_participants();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], 0u);
  EXPECT_EQ(missing[1], 2u);
}

TEST(Backend, AdjustmentsOnlyFromReporters) {
  BackendServer b(backend_config());
  b.begin_round(0, 3);
  b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells()));
  EXPECT_THROW(b.submit_adjustment(2, std::vector<crypto::BlindCell>(kParams.cells())),
               std::invalid_argument);
  b.submit_adjustment(0, std::vector<crypto::BlindCell>(kParams.cells()));
  EXPECT_THROW(b.submit_adjustment(0, std::vector<crypto::BlindCell>(kParams.cells())),
               std::invalid_argument);
}

TEST(Backend, FinalizeRequiresReportsAndAdjustments) {
  BackendServer b(backend_config());
  b.begin_round(0, 2);
  EXPECT_THROW(b.finalize_round(), std::logic_error);  // no reports
  b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells()));
  // One missing client, no adjustment yet.
  EXPECT_THROW(b.finalize_round(), std::logic_error);
  b.submit_adjustment(0, std::vector<crypto::BlindCell>(kParams.cells()));
  const auto result = b.finalize_round();
  EXPECT_EQ(result.reports, 1u);
  EXPECT_EQ(result.roster, 2u);
}

TEST(Backend, PlaintextRoundComputesThreshold) {
  // Reports without blinding (all-zero blinding factors) act as plaintext:
  // verify the distribution and threshold math end to end.
  BackendServer b(backend_config());
  b.begin_round(0, 3);
  // Three "clients" each report a sketch; ads 1 and 2 seen by all three,
  // ad 3 by one.
  for (std::size_t u = 0; u < 3; ++u) {
    sketch::CountMinSketch cms(kParams, 5);
    cms.update(1);
    cms.update(2);
    if (u == 0) cms.update(3);
    const auto cells = cms.cells();
    b.submit_report(u, {cells.begin(), cells.end()});
  }
  const auto result = b.finalize_round();
  EXPECT_DOUBLE_EQ(*b.users_for(1), 3.0);
  EXPECT_DOUBLE_EQ(*b.users_for(2), 3.0);
  EXPECT_DOUBLE_EQ(*b.users_for(3), 1.0);
  // Distribution {3, 3, 1}: mean = 7/3.
  EXPECT_NEAR(result.users_threshold, 7.0 / 3.0, 1e-9);
  EXPECT_EQ(*b.users_threshold(), result.users_threshold);
}

TEST(Backend, NoResultBeforeFirstRound) {
  BackendServer b(backend_config());
  EXPECT_FALSE(b.users_for(1).has_value());
  EXPECT_FALSE(b.users_threshold().has_value());
}

TEST(Backend, BytesReceivedAccounting) {
  BackendServer b(backend_config());
  b.begin_round(0, 2);
  b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells()));
  EXPECT_EQ(b.bytes_received(), kParams.bytes());
}

TEST(Database, UserRegistry) {
  Database db;
  EXPECT_FALSE(db.is_registered(4));
  db.register_user(4, "alice");
  EXPECT_TRUE(db.is_registered(4));
  EXPECT_EQ(db.active_users(), 1u);
}

TEST(Database, WeekSnapshots) {
  Database db;
  db.store_week({.week = 2,
                 .users_threshold = 2.25,
                 .users_histogram = {{1, 10}, {2, 5}},
                 .reports = 90,
                 .roster = 100});
  ASSERT_TRUE(db.week(2).has_value());
  EXPECT_DOUBLE_EQ(db.week(2)->users_threshold, 2.25);
  EXPECT_FALSE(db.week(1).has_value());
  EXPECT_EQ(db.weeks(), std::vector<std::uint64_t>{2});
}

TEST(Database, CrawlerSightings) {
  Database db;
  db.store_crawler_sighting(3, 101);
  db.store_crawler_sighting(4, 101);
  EXPECT_TRUE(db.crawler_saw(101));
  EXPECT_FALSE(db.crawler_saw(102));
  EXPECT_EQ(db.crawler_ads().size(), 1u);
}

// End-to-end coordinator round over real crypto, small parameters.
class RoundTest : public ::testing::Test {
 protected:
  static const crypto::DhGroup& group() {
    static const crypto::DhGroup g = [] {
      util::Rng rng(2048);
      return crypto::DhGroup::generate(rng, 128);
    }();
    return g;
  }
};

TEST_F(RoundTest, FullRoundRecoversCounts) {
  client::HashUrlMapper mapper(500);
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  for (core::UserId u = 0; u < 4; ++u) exts.emplace_back(u, ecfg, mapper);
  for (auto& e : exts) e.observe_ad("https://everyone.test", 1, 0);
  exts[0].observe_ad("https://rare.test", 2, 0);

  BackendServer backend(backend_config());
  RoundCoordinator coordinator(
      group(), std::span<client::BrowserExtension>(exts), backend, 9);
  const auto result = coordinator.run_full_round(0);
  EXPECT_EQ(result.reports, 4u);
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://everyone.test")),
                   4.0);
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://rare.test")), 1.0);
  EXPECT_GT(coordinator.traffic().report_bytes, 0u);
  EXPECT_EQ(coordinator.traffic().adjustment_bytes, 0u);
}

TEST_F(RoundTest, MissingClientRecoveredByAdjustmentRound) {
  client::HashUrlMapper mapper(500);
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  for (core::UserId u = 0; u < 5; ++u) exts.emplace_back(u, ecfg, mapper);
  for (auto& e : exts) e.observe_ad("https://everyone.test", 1, 0);

  BackendServer backend(backend_config());
  RoundCoordinator coordinator(
      group(), std::span<client::BrowserExtension>(exts), backend, 10);
  const std::vector<std::size_t> reporting{0, 2, 3, 4};  // client 1 dark
  const auto result = coordinator.run_round(0, reporting);
  EXPECT_EQ(result.reports, 4u);
  // Count reflects the 4 reporters only, exactly.
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://everyone.test")),
                   4.0);
  EXPECT_GT(coordinator.traffic().adjustment_bytes, 0u);
}

TEST_F(RoundTest, RoundsAreIndependent) {
  client::HashUrlMapper mapper(500);
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  for (core::UserId u = 0; u < 3; ++u) exts.emplace_back(u, ecfg, mapper);
  BackendServer backend(backend_config());
  RoundCoordinator coordinator(
      group(), std::span<client::BrowserExtension>(exts), backend, 11);

  for (auto& e : exts) e.observe_ad("https://w1.test", 1, 0);
  (void)coordinator.run_full_round(1);
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://w1.test")), 3.0);

  for (auto& e : exts) e.start_new_period();
  exts[0].observe_ad("https://w2.test", 1, 7);
  (void)coordinator.run_full_round(2);
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://w2.test")), 1.0);
  EXPECT_DOUBLE_EQ(*backend.users_for(mapper.map("https://w1.test")), 0.0);
}

TEST_F(RoundTest, RejectsReporterOutsideRoster) {
  client::HashUrlMapper mapper(500);
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  exts.emplace_back(0, ecfg, mapper);
  BackendServer backend(backend_config());
  RoundCoordinator coordinator(
      group(), std::span<client::BrowserExtension>(exts), backend, 12);
  const std::vector<std::size_t> reporting{3};
  EXPECT_THROW((void)coordinator.run_round(0, reporting),
               std::invalid_argument);
}

}  // namespace
}  // namespace eyw::server
