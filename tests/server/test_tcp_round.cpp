// The deployment invariant of the socket transport: a full reporting
// round driven through a RemoteBackend over real TCP must be bit-identical
// to the same round over in-process loopback — aggregate cells, #Users
// distribution, and Users_th — and the byte totals each side's transport
// accounting reports must equal the sum of encoded envelope bytes that
// crossed the socket.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "client/url_mapper.hpp"
#include "proto/client_reactor.hpp"
#include "proto/tcp.hpp"
#include "server/cluster.hpp"
#include "server/dispatcher.hpp"
#include "server/endpoint.hpp"
#include "server/remote_backend.hpp"
#include "server/round.hpp"

namespace eyw::server {
namespace {

const sketch::CmsParams kParams{.depth = 4, .width = 64};

BackendConfig backend_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 5,
          .id_space = 500,
          .users_rule = core::ThresholdRule::kMean};
}

const crypto::DhGroup& group() {
  static const crypto::DhGroup g = [] {
    util::Rng rng(4096);
    return crypto::DhGroup::generate(rng, 128);
  }();
  return g;
}

std::vector<client::BrowserExtension> make_fleet(client::UrlMapper& mapper,
                                                 std::size_t n) {
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  for (std::size_t u = 0; u < n; ++u)
    exts.emplace_back(static_cast<core::UserId>(u), ecfg, mapper);
  for (auto& e : exts) {
    e.observe_ad("https://everyone.test", 1, 0);
    if (e.user() % 3 == 0) e.observe_ad("https://thirds.test", 2, 0);
  }
  exts[0].observe_ad("https://rare.test", 3, 0);
  return exts;
}

/// Pass-through wrapper recording every frame size independently of the
/// Transport base-class stats, so "stats == sum of encoded frame bytes"
/// is asserted against a second bookkeeper, not against itself.
class RecordingTransport final : public proto::Transport {
 public:
  explicit RecordingTransport(proto::Transport& inner) : inner_(inner) {}

  std::uint64_t request_bytes = 0;
  std::uint64_t reply_bytes = 0;

 private:
  std::vector<std::uint8_t> do_exchange(
      std::span<const std::uint8_t> frame) override {
    request_bytes += frame.size();
    auto reply = inner_.exchange(frame);
    reply_bytes += reply.size();
    return reply;
  }

  proto::Transport& inner_;
};

TEST(TcpRound, FullRoundBitIdenticalToLoopbackAndBytesAccounted) {
  client::HashUrlMapper mapper(backend_config().id_space);
  const std::vector<std::size_t> reporting{0, 1, 3, 4, 5};  // client 2 dark

  // Loopback reference (the adjustment phase runs: client 2 is missing).
  BackendCluster loop_cluster(backend_config(), 2);
  auto exts_loop = make_fleet(mapper, 6);
  RoundCoordinator ref(group(),
                       std::span<client::BrowserExtension>(exts_loop),
                       loop_cluster, /*seed=*/79);
  const RoundResult want = ref.run_round(0, reporting);

  // Same round, back-end in a (logically) different process: the cluster
  // sits behind its proto endpoint behind a real socket.
  BackendCluster tcp_cluster(backend_config(), 2);
  BackendEndpoint endpoint(tcp_cluster, /*serve_control=*/true);
  proto::FrameServer server([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });
  proto::TcpTransport link("127.0.0.1", server.port());
  RecordingTransport recorded(link);
  RemoteBackend remote(recorded, backend_config());
  auto exts_tcp = make_fleet(mapper, 6);
  RoundCoordinator live(group(),
                        std::span<client::BrowserExtension>(exts_tcp),
                        remote, /*seed=*/79);
  const RoundResult got = live.run_round(0, reporting);

  // Bit-identical result: cells, distribution, threshold, bookkeeping.
  const auto want_cells = want.aggregate.cells();
  const auto got_cells = got.aggregate.cells();
  ASSERT_EQ(want_cells.size(), got_cells.size());
  for (std::size_t i = 0; i < want_cells.size(); ++i)
    ASSERT_EQ(want_cells[i], got_cells[i]) << "cell " << i;
  EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
  EXPECT_EQ(want.users_threshold, got.users_threshold);
  EXPECT_EQ(want.reports, got.reports);
  EXPECT_EQ(want.roster, got.roster);

  // Byte accounting: the client-side TransportStats equal the sum of the
  // encoded frames the round moved (independent recorder), and the
  // server's view mirrors them exactly — nothing lost, nothing invented
  // by the length framing.
  link.close();
  for (int i = 0; i < 2'000 && server.active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server.active_connections(), 0u);

  const proto::TransportStats& client_stats = link.stats();
  const proto::TransportStats server_stats = server.stats();
  EXPECT_GT(recorded.request_bytes, 0u);
  EXPECT_EQ(client_stats.bytes_sent, recorded.request_bytes);
  EXPECT_EQ(client_stats.bytes_received, recorded.reply_bytes);
  EXPECT_EQ(server_stats.bytes_received, recorded.request_bytes);
  EXPECT_EQ(server_stats.bytes_sent, recorded.reply_bytes);
  EXPECT_EQ(server_stats.messages_received, client_stats.messages_sent);
  EXPECT_EQ(server_stats.messages_sent, client_stats.messages_received);

  // The remote path exercised the control plane + submissions:
  // begin(1) + reports(5) + missing(1) + adjustments(5) + finalize(1).
  EXPECT_EQ(client_stats.messages_sent, 13u);
}

TEST(TcpRound, FullRoundBitIdenticalThroughAsyncDispatcherAndShards) {
  // The reactor deployment shape: multiple reactor shards, endpoint
  // dispatch behind an AsyncDispatcher so reactor callbacks never block
  // on round work. The round must still be bit-identical to loopback —
  // the concurrency model of the transport is not allowed to exist,
  // observably.
  client::HashUrlMapper mapper(backend_config().id_space);
  const std::vector<std::size_t> reporting{0, 1, 3, 4, 5};

  BackendCluster loop_cluster(backend_config(), 2);
  auto exts_loop = make_fleet(mapper, 6);
  RoundCoordinator ref(group(),
                       std::span<client::BrowserExtension>(exts_loop),
                       loop_cluster, /*seed=*/79);
  const RoundResult want = ref.run_round(0, reporting);

  BackendCluster tcp_cluster(backend_config(), 2);
  BackendEndpoint endpoint(tcp_cluster, /*serve_control=*/true);
  AsyncDispatcher dispatcher([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });
  proto::FrameServer server(dispatcher.handler(),
                            {.reactor_shards = 3});
  dispatcher.set_frame_recycler(server.frame_recycler());
  EXPECT_EQ(server.shards(), 3u);
  proto::TcpTransport link("127.0.0.1", server.port());
  RemoteBackend remote(link, backend_config());
  auto exts_tcp = make_fleet(mapper, 6);
  RoundCoordinator live(group(),
                        std::span<client::BrowserExtension>(exts_tcp),
                        remote, /*seed=*/79);
  const RoundResult got = live.run_round(0, reporting);

  const auto want_cells = want.aggregate.cells();
  const auto got_cells = got.aggregate.cells();
  ASSERT_EQ(want_cells.size(), got_cells.size());
  for (std::size_t i = 0; i < want_cells.size(); ++i)
    ASSERT_EQ(want_cells[i], got_cells[i]) << "cell " << i;
  EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
  EXPECT_EQ(want.users_threshold, got.users_threshold);
  EXPECT_EQ(want.reports, got.reports);
  EXPECT_EQ(want.roster, got.roster);

  link.close();
  for (int i = 0; i < 2'000 && server.active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const proto::TransportStats server_stats = server.stats();
  EXPECT_EQ(server_stats.messages_received, link.stats().messages_sent);
  EXPECT_EQ(server_stats.bytes_received, link.stats().bytes_sent);
  EXPECT_EQ(server_stats.bytes_sent, link.stats().bytes_received);
  EXPECT_EQ(dispatcher.pending(), 0u);
}

TEST(TcpRound, FullRoundBitIdenticalWithShardedDispatcherLanes) {
  // Dispatcher-shard parity: the same round through an AsyncDispatcher
  // sharded one lane per backend shard (the full-width ingest shape) must
  // be bit-identical to the single-lane path — per-shard submission order
  // is preserved per lane, and aggregation observes nothing else.
  client::HashUrlMapper mapper(backend_config().id_space);
  const std::vector<std::size_t> reporting{0, 1, 3, 4, 5};

  // Single-lane reference.
  BackendCluster one_cluster(backend_config(), 2);
  BackendEndpoint one_endpoint(one_cluster, /*serve_control=*/true);
  AsyncDispatcher one_lane([&](std::span<const std::uint8_t> frame) {
    return one_endpoint.handle(frame);
  });
  ASSERT_EQ(one_lane.lanes(), 1u);
  proto::FrameServer one_server(one_lane.handler(), {.reactor_shards = 1});
  one_lane.set_frame_recycler(one_server.frame_recycler());
  proto::TcpTransport one_link("127.0.0.1", one_server.port());
  RemoteBackend one_remote(one_link, backend_config());
  auto exts_one = make_fleet(mapper, 6);
  RoundCoordinator one_coord(group(),
                             std::span<client::BrowserExtension>(exts_one),
                             one_remote, /*seed=*/79);
  const RoundResult want = one_coord.run_round(0, reporting);

  // Lane-per-shard path.
  BackendCluster sharded_cluster(backend_config(), 2);
  BackendEndpoint sharded_endpoint(sharded_cluster, /*serve_control=*/true);
  AsyncDispatcher sharded(
      [&](std::span<const std::uint8_t> frame) {
        return sharded_endpoint.handle(frame);
      },
      /*lanes=*/2, cluster_lane_router(sharded_cluster),
      control_plane_barrier());
  ASSERT_EQ(sharded.lanes(), 2u);
  proto::FrameServer sharded_server(sharded.handler(),
                                    {.reactor_shards = 2});
  sharded.set_frame_recycler(sharded_server.frame_recycler());
  proto::TcpTransport sharded_link("127.0.0.1", sharded_server.port());
  RemoteBackend sharded_remote(sharded_link, backend_config());
  auto exts_sharded = make_fleet(mapper, 6);
  RoundCoordinator sharded_coord(
      group(), std::span<client::BrowserExtension>(exts_sharded),
      sharded_remote, /*seed=*/79);
  const RoundResult got = sharded_coord.run_round(0, reporting);

  const auto want_cells = want.aggregate.cells();
  const auto got_cells = got.aggregate.cells();
  ASSERT_EQ(want_cells.size(), got_cells.size());
  for (std::size_t i = 0; i < want_cells.size(); ++i)
    ASSERT_EQ(want_cells[i], got_cells[i]) << "cell " << i;
  EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
  EXPECT_EQ(want.users_threshold, got.users_threshold);
  EXPECT_EQ(want.reports, got.reports);
  EXPECT_EQ(want.roster, got.roster);
  EXPECT_EQ(sharded.pending(), 0u);
}

TEST(TcpRound, FullRoundBitIdenticalThroughAsyncClientChannel) {
  // The async outbound path under the unchanged coordinator: a pipelined
  // RemoteBackend over a ClientReactor channel must reproduce the
  // loopback round bit for bit — the sync Transport contract holds
  // through the adapter and the pipelining is unobservable in the result.
  client::HashUrlMapper mapper(backend_config().id_space);
  const std::vector<std::size_t> reporting{0, 1, 3, 4, 5};

  BackendCluster loop_cluster(backend_config(), 2);
  auto exts_loop = make_fleet(mapper, 6);
  RoundCoordinator ref(group(),
                       std::span<client::BrowserExtension>(exts_loop),
                       loop_cluster, /*seed=*/79);
  const RoundResult want = ref.run_round(0, reporting);

  BackendCluster tcp_cluster(backend_config(), 2);
  BackendEndpoint endpoint(tcp_cluster, /*serve_control=*/true);
  AsyncDispatcher dispatcher(
      [&](std::span<const std::uint8_t> frame) {
        return endpoint.handle(frame);
      },
      /*lanes=*/2, cluster_lane_router(tcp_cluster),
      control_plane_barrier());
  proto::FrameServer server(dispatcher.handler(), {.reactor_shards = 1});

  proto::ClientReactor reactor({.shards = 1, .backoff_jitter_seed = 5});
  auto channel = reactor.open("127.0.0.1", server.port());
  RemoteBackend remote(*channel, backend_config());  // pipelined mode
  auto exts_async = make_fleet(mapper, 6);
  RoundCoordinator live(group(),
                        std::span<client::BrowserExtension>(exts_async),
                        remote, /*seed=*/79);
  const RoundResult got = live.run_round(0, reporting);
  EXPECT_EQ(remote.outstanding(), 0u);  // every barrier flushed

  const auto want_cells = want.aggregate.cells();
  const auto got_cells = got.aggregate.cells();
  ASSERT_EQ(want_cells.size(), got_cells.size());
  for (std::size_t i = 0; i < want_cells.size(); ++i)
    ASSERT_EQ(want_cells[i], got_cells[i]) << "cell " << i;
  EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
  EXPECT_EQ(want.users_threshold, got.users_threshold);
  EXPECT_EQ(want.reports, got.reports);
  EXPECT_EQ(want.roster, got.roster);

  // The channel's byte accounting mirrors the server's, envelope bytes
  // only — pipelined or not, nothing is lost or invented on the wire.
  const proto::TransportStats client_stats = channel->stats();
  const proto::FrameServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.bytes_received, client_stats.bytes_sent);
  EXPECT_EQ(server_stats.bytes_sent, client_stats.bytes_received);
  EXPECT_EQ(server_stats.messages_received, client_stats.messages_sent);
}

TEST(TcpRound, PipelinedSubmissionErrorSurfacesAtNextBarrier) {
  // A submission the server refuses (participant outside the roster)
  // acks as Error; in pipelined mode that must surface as a thrown
  // ProtoError at the next barrier call, and never be lost.
  BackendCluster cluster(backend_config(), 2);
  BackendEndpoint endpoint(cluster, /*serve_control=*/true);
  proto::FrameServer server([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });
  proto::ClientReactor reactor({.shards = 1});
  auto channel = reactor.open("127.0.0.1", server.port());
  RemoteBackend remote(*channel, backend_config());

  remote.begin_round(0, 4);
  remote.submit_report(2, std::vector<crypto::BlindCell>(
                              backend_config().cms_params.cells(), 1u));
  remote.submit_report(9, std::vector<crypto::BlindCell>(
                              backend_config().cms_params.cells(), 1u));
  try {
    remote.flush();
    FAIL() << "refused submission did not surface at the barrier";
  } catch (const proto::ProtoError& e) {
    EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
  }
  // The error is consumed: the next barrier reflects reality (one good
  // report landed) instead of rethrowing forever.
  EXPECT_EQ(remote.missing_participants().size(), 3u);
}

TEST(TcpRound, ControlPlaneRefusedWithoutOptIn) {
  // An ingest-only endpoint (the default) must refuse round control: a
  // reporting client cannot open rounds or trigger finalization.
  BackendCluster cluster(backend_config(), 2);
  BackendEndpoint endpoint(cluster);  // serve_control defaults to false
  proto::FrameServer server([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });
  proto::TcpTransport link("127.0.0.1", server.port());
  RemoteBackend remote(link, backend_config());
  try {
    remote.begin_round(0, 4);
    FAIL() << "control message accepted by ingest-only endpoint";
  } catch (const proto::ProtoError& e) {
    EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
  }
}

TEST(TcpRound, OprfMapperBootstrapsAndMatchesInProcessMapping) {
  // Key distribution + batch evaluation over the socket must agree with
  // the in-process mapper against the same OprfServer key.
  util::Rng rng(1234);
  const crypto::OprfServer oprf(rng, 256);
  OprfEndpoint endpoint(oprf);
  proto::FrameServer server([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });

  proto::TcpTransport link("127.0.0.1", server.port());
  const proto::OprfKeyAnswer key = proto::OprfKeyAnswer::decode(
      proto::expect_reply(link.exchange(proto::encode_oprf_key_query()),
                          proto::MsgKind::kOprfKeyAnswer));
  EXPECT_EQ(key.n, oprf.public_key().n);
  EXPECT_EQ(key.e, oprf.public_key().e);

  client::OprfUrlMapper remote_mapper(
      link, crypto::RsaPublicKey{.n = key.n, .e = key.e},
      /*id_space=*/10'000, /*rng_seed=*/11);
  client::OprfUrlMapper local_mapper(oprf, /*id_space=*/10'000,
                                     /*rng_seed=*/22);
  const std::vector<std::string> urls{"https://a.test", "https://b.test",
                                      "https://c.test"};
  const auto over_tcp = remote_mapper.map_batch(urls);
  const auto in_process = local_mapper.map_batch(urls);
  EXPECT_EQ(over_tcp, in_process);
}

}  // namespace
}  // namespace eyw::server
