// The sharded back-end front door: a BackendCluster fed the same reports
// as a single BackendServer must produce byte-identical aggregates and an
// identical Users_th — sharding is a deployment choice, not a semantics
// change. Also covers the ShardedSubmit wire path and the cluster's
// fault-tolerance bookkeeping.
#include <gtest/gtest.h>

#include "proto/message.hpp"
#include "server/cluster.hpp"
#include "server/endpoint.hpp"
#include "server/round.hpp"

namespace eyw::server {
namespace {

const sketch::CmsParams kParams{.depth = 4, .width = 64};

BackendConfig backend_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 5,
          .id_space = 500,
          .users_rule = core::ThresholdRule::kMean};
}

const crypto::DhGroup& group() {
  static const crypto::DhGroup g = [] {
    util::Rng rng(4096);
    return crypto::DhGroup::generate(rng, 128);
  }();
  return g;
}

/// Identical fleet of extensions for every backend under test: same seed
/// -> same keys -> same blinded cells, so results must match exactly.
std::vector<client::BrowserExtension> make_fleet(client::UrlMapper& mapper,
                                                 std::size_t n) {
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 5};
  std::vector<client::BrowserExtension> exts;
  for (std::size_t u = 0; u < n; ++u)
    exts.emplace_back(static_cast<core::UserId>(u), ecfg, mapper);
  for (auto& e : exts) {
    e.observe_ad("https://everyone.test", 1, 0);
    if (e.user() % 3 == 0) e.observe_ad("https://thirds.test", 2, 0);
  }
  exts[0].observe_ad("https://rare.test", 3, 0);
  return exts;
}

TEST(BackendCluster, RejectsZeroShards) {
  EXPECT_THROW(BackendCluster(backend_config(), 0), std::invalid_argument);
}

TEST(BackendCluster, NoResultBeforeFirstRound) {
  BackendCluster cluster(backend_config(), 3);
  EXPECT_FALSE(cluster.users_for(1).has_value());
  EXPECT_FALSE(cluster.users_threshold().has_value());
}

TEST(BackendCluster, FullRoundMatchesSingleServerExactly) {
  client::HashUrlMapper mapper(500);

  BackendServer single(backend_config());
  auto exts_a = make_fleet(mapper, 9);
  RoundCoordinator ca(group(), std::span<client::BrowserExtension>(exts_a),
                      single, /*seed=*/77);
  const RoundResult ra = ca.run_full_round(0);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    BackendCluster cluster(backend_config(), shards);
    auto exts_b = make_fleet(mapper, 9);
    RoundCoordinator cb(group(), std::span<client::BrowserExtension>(exts_b),
                        cluster, /*seed=*/77);
    const RoundResult rb = cb.run_full_round(0);

    // Aggregate cells byte-identical, distribution identical, same
    // threshold — and through the same query API.
    const auto cells_a = ra.aggregate.cells();
    const auto cells_b = rb.aggregate.cells();
    ASSERT_EQ(cells_a.size(), cells_b.size());
    for (std::size_t m = 0; m < cells_a.size(); ++m)
      ASSERT_EQ(cells_a[m], cells_b[m]) << "cell " << m << " shards=" << shards;
    EXPECT_EQ(ra.distribution.counts(), rb.distribution.counts());
    EXPECT_EQ(ra.users_threshold, rb.users_threshold);
    EXPECT_EQ(rb.reports, 9u);
    EXPECT_EQ(*cluster.users_for(mapper.map("https://everyone.test")),
              *single.users_for(mapper.map("https://everyone.test")));
    EXPECT_EQ(*cluster.users_threshold(), *single.users_threshold());
  }
}

TEST(BackendCluster, MissingClientAdjustmentRoundMatchesSingleServer) {
  client::HashUrlMapper mapper(500);
  const std::vector<std::size_t> reporting{0, 2, 3, 5, 6};  // 1, 4 dark

  BackendServer single(backend_config());
  auto exts_a = make_fleet(mapper, 7);
  RoundCoordinator ca(group(), std::span<client::BrowserExtension>(exts_a),
                      single, /*seed=*/78);
  const RoundResult ra = ca.run_round(0, reporting);

  BackendCluster cluster(backend_config(), 3);
  auto exts_b = make_fleet(mapper, 7);
  RoundCoordinator cb(group(), std::span<client::BrowserExtension>(exts_b),
                      cluster, /*seed=*/78);
  const RoundResult rb = cb.run_round(0, reporting);

  EXPECT_EQ(ra.users_threshold, rb.users_threshold);
  EXPECT_EQ(ra.distribution.counts(), rb.distribution.counts());
  EXPECT_EQ(rb.reports, reporting.size());
  EXPECT_EQ(*cluster.users_for(mapper.map("https://everyone.test")),
            static_cast<double>(reporting.size()));
}

TEST(BackendCluster, TracksMissingAcrossShards) {
  BackendCluster cluster(backend_config(), 2);
  cluster.begin_round(0, 5);
  cluster.submit_report(1, std::vector<crypto::BlindCell>(kParams.cells()));
  cluster.submit_report(4, std::vector<crypto::BlindCell>(kParams.cells()));
  const auto missing = cluster.missing_participants();
  EXPECT_EQ(missing, (std::vector<std::size_t>{0, 2, 3}));
  // Reports landed on their routed shards only.
  EXPECT_EQ(cluster.shard(0).reports_received(), 1u);  // participant 4
  EXPECT_EQ(cluster.shard(1).reports_received(), 1u);  // participant 1
  EXPECT_EQ(cluster.bytes_received(), 2 * kParams.bytes());
}

TEST(BackendCluster, RejectsOutOfRosterAndDuplicates) {
  BackendCluster cluster(backend_config(), 2);
  cluster.begin_round(0, 3);
  EXPECT_THROW(
      cluster.submit_report(7, std::vector<crypto::BlindCell>(kParams.cells())),
      std::invalid_argument);
  cluster.submit_report(2, std::vector<crypto::BlindCell>(kParams.cells()));
  EXPECT_THROW(
      cluster.submit_report(2, std::vector<crypto::BlindCell>(kParams.cells())),
      std::invalid_argument);
  // Adjustment from a non-reporter is refused by the owning shard.
  EXPECT_THROW(cluster.submit_adjustment(
                   0, std::vector<crypto::BlindCell>(kParams.cells())),
               std::invalid_argument);
}

TEST(ShardedSubmit, FrontDoorAcceptsCorrectlyRoutedFramesOnly) {
  BackendCluster cluster(backend_config(), 3);
  BackendEndpoint endpoint(cluster);
  cluster.begin_round(2, 6);

  std::vector<std::uint32_t> cells(kParams.cells(), 7);
  const proto::BlindedReport report{
      .participant = 4, .params = kParams, .cells = cells};
  proto::ShardedSubmit sub;
  sub.inner = report.encode(/*round=*/2);

  // Wrong shard (participant 4 routes to shard 1): explicit rejection.
  sub.shard = 0;
  {
    const auto reply = endpoint.handle(sub.encode(4, 2));
    try {
      (void)proto::expect_reply(reply, proto::MsgKind::kAck);
      FAIL() << "misrouted frame was accepted";
    } catch (const proto::ProtoError& e) {
      EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
    }
  }
  EXPECT_EQ(cluster.shard(1).reports_received(), 0u);

  // Wrapper sender disagreeing with the inner submission's sender:
  // refused before it reaches a shard. Routing (e.g. the sharded
  // dispatcher's lane choice) keys on the outer sender without decoding
  // the payload, so a mismatched wrapper would ride the wrong
  // serialization lane.
  {
    sub.shard = static_cast<std::uint32_t>(cluster.shard_for(4));
    const auto reply = endpoint.handle(sub.encode(/*sender=*/5, 2));
    try {
      (void)proto::expect_reply(reply, proto::MsgKind::kAck);
      FAIL() << "sender-mismatched wrapper was accepted";
    } catch (const proto::ProtoError& e) {
      EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
    }
    EXPECT_EQ(cluster.shard(1).reports_received(), 0u);
  }

  // A submission stamped with a different round than the one open:
  // refused (blinded pads only cancel within their own round, and a
  // sharded dispatcher may apply frames from different connections
  // concurrently — a stale frame must never leak across a round
  // boundary).
  {
    const auto reply = endpoint.handle(report.encode(/*round=*/1));
    try {
      (void)proto::expect_reply(reply, proto::MsgKind::kAck);
      FAIL() << "stale-round report was accepted";
    } catch (const proto::ProtoError& e) {
      EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
    }
    EXPECT_EQ(cluster.shard(1).reports_received(), 0u);
  }

  // Correct shard: accepted and applied.
  sub.shard = static_cast<std::uint32_t>(cluster.shard_for(4));
  EXPECT_NO_THROW((void)proto::expect_reply(endpoint.handle(sub.encode(4, 2)),
                                            proto::MsgKind::kAck));
  EXPECT_EQ(cluster.shard(1).reports_received(), 1u);

  // A non-sharded backend refuses the wrapper outright.
  BackendServer single(backend_config());
  BackendEndpoint single_endpoint(single);
  single.begin_round(2, 6);
  try {
    (void)proto::expect_reply(single_endpoint.handle(sub.encode(4, 2)),
                              proto::MsgKind::kAck);
    FAIL() << "non-sharded backend accepted sharded-submit";
  } catch (const proto::ProtoError& e) {
    EXPECT_EQ(e.code(), proto::ErrorCode::kRejected);
  }
}

TEST(RoundTrafficMeasured, EqualsTransportByteTotalsExactly) {
  // The acceptance bar of the proto redesign: RoundTraffic is the sum of
  // encoded frame bytes that actually crossed the two channels — nothing
  // estimated, nothing missed.
  client::HashUrlMapper mapper(500);
  BackendCluster cluster(backend_config(), 2);
  auto exts = make_fleet(mapper, 6);
  RoundCoordinator c(group(), std::span<client::BrowserExtension>(exts),
                     cluster, /*seed=*/79);
  const std::vector<std::size_t> reporting{0, 1, 3, 4, 5};  // client 2 dark
  const RoundResult result = c.run_round(0, reporting);

  const auto& t = c.traffic();
  EXPECT_GT(t.roster_bytes, 0u);
  EXPECT_GT(t.report_bytes, 0u);
  EXPECT_GT(t.adjustment_bytes, 0u);
  EXPECT_GT(t.threshold_bytes, 0u);
  EXPECT_EQ(t.total(), c.uplink_stats().total_bytes() +
                           c.downlink_stats().total_bytes());

  // Every client decoded the same Users_th the server computed.
  for (const double th : c.client_thresholds())
    EXPECT_EQ(th, result.users_threshold);

  // Report payload dominates: the measured report bytes must cover the
  // raw cells of every reporter plus framing.
  EXPECT_GE(t.report_bytes, reporting.size() * kParams.bytes());
}

}  // namespace
}  // namespace eyw::server
