// Determinism of the parallel round pipeline: for identical seeds, the
// multi-threaded coordinator must produce a bit-identical RoundResult to
// the serial path — same aggregate cells, same distribution, same
// threshold.
#include <gtest/gtest.h>

#include "server/backend.hpp"
#include "server/round.hpp"

namespace eyw::server {
namespace {

const sketch::CmsParams kParams{.depth = 5, .width = 128};

BackendConfig backend_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 21,
          .id_space = 2'000,
          .users_rule = core::ThresholdRule::kMean};
}

const crypto::DhGroup& group() {
  static const crypto::DhGroup g = [] {
    util::Rng rng(4096);
    return crypto::DhGroup::generate(rng, 128);
  }();
  return g;
}

std::vector<client::BrowserExtension> make_extensions(
    client::UrlMapper& mapper, std::size_t count) {
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = kParams, .cms_hash_seed = 21};
  std::vector<client::BrowserExtension> exts;
  exts.reserve(count);
  for (core::UserId u = 0; u < count; ++u) exts.emplace_back(u, ecfg, mapper);
  for (auto& e : exts) {
    for (int a = 0; a < 12; ++a) {
      e.observe_ad("https://ad.test/" + std::to_string((e.user() * 5 + a) % 40),
                   static_cast<core::DomainId>(a % 3), 0);
    }
  }
  return exts;
}

void expect_identical(const RoundResult& a, const RoundResult& b) {
  const auto ca = a.aggregate.cells();
  const auto cb = b.aggregate.cells();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i)
    ASSERT_EQ(ca[i], cb[i]) << "cell " << i;
  EXPECT_EQ(a.users_threshold, b.users_threshold);  // bitwise, not NEAR
  EXPECT_EQ(a.distribution.counts(), b.distribution.counts());
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.roster, b.roster);
}

TEST(ParallelRound, FullRoundMatchesSerialBitForBit) {
  client::HashUrlMapper mapper(2'000);
  auto exts_serial = make_extensions(mapper, 12);
  auto exts_parallel = make_extensions(mapper, 12);

  BackendServer backend_serial(backend_config());
  BackendServer backend_parallel(backend_config());
  RoundCoordinator serial(group(),
                          std::span<client::BrowserExtension>(exts_serial),
                          backend_serial, 77, /*threads=*/1);
  RoundCoordinator parallel(group(),
                            std::span<client::BrowserExtension>(exts_parallel),
                            backend_parallel, 77, /*threads=*/4);

  const RoundResult a = serial.run_full_round(3);
  const RoundResult b = parallel.run_full_round(3);
  expect_identical(a, b);
  EXPECT_EQ(serial.traffic().report_bytes, parallel.traffic().report_bytes);
}

TEST(ParallelRound, AdjustmentRoundMatchesSerialBitForBit) {
  client::HashUrlMapper mapper(2'000);
  auto exts_serial = make_extensions(mapper, 10);
  auto exts_parallel = make_extensions(mapper, 10);

  BackendServer backend_serial(backend_config());
  BackendServer backend_parallel(backend_config());
  RoundCoordinator serial(group(),
                          std::span<client::BrowserExtension>(exts_serial),
                          backend_serial, 99, /*threads=*/1);
  RoundCoordinator parallel(group(),
                            std::span<client::BrowserExtension>(exts_parallel),
                            backend_parallel, 99, /*threads=*/4);

  const std::vector<std::size_t> reporting{0, 1, 3, 4, 6, 8, 9};  // 2,5,7 dark
  const RoundResult a = serial.run_round(5, reporting);
  const RoundResult b = parallel.run_round(5, reporting);
  expect_identical(a, b);
  EXPECT_GT(parallel.traffic().adjustment_bytes, 0u);
}

TEST(ParallelRound, QueryManyAgreesWithPerIdQueries) {
  client::HashUrlMapper mapper(2'000);
  auto exts = make_extensions(mapper, 6);
  BackendServer backend(backend_config());
  RoundCoordinator coordinator(
      group(), std::span<client::BrowserExtension>(exts), backend, 55);
  const RoundResult result = coordinator.run_full_round(0);

  // The finalize scan used query_range; re-check every id with the scalar
  // query path.
  for (std::uint64_t id = 0; id < 2'000; ++id) {
    const double users = *backend.users_for(id);
    EXPECT_EQ(users, static_cast<double>(result.aggregate.query(id)))
        << "id=" << id;
  }
}

TEST(ParallelRound, FinalizeWithExplicitPoolMatchesDefault) {
  BackendServer a(backend_config());
  BackendServer b(backend_config());
  for (BackendServer* s : {&a, &b}) {
    s->begin_round(0, 3);
    sketch::CountMinSketch cms(kParams, 21);
    cms.update(7);
    const auto cells = cms.cells();
    s->submit_report(1, {cells.begin(), cells.end()});
    s->submit_adjustment(1,
                         std::vector<crypto::BlindCell>(kParams.cells(), 0));
  }
  util::ThreadPool pool(4);
  const RoundResult ra = a.finalize_round(&pool);
  const RoundResult rb = b.finalize_round();
  expect_identical(ra, rb);
}

TEST(ParallelRound, FinalizeGuardsMissingClientsFromInternalState) {
  // The adjustment-completeness guard is answered from reports-vs-roster
  // state, not from any caller-supplied missing list.
  BackendServer b(backend_config());
  b.begin_round(0, 3);
  b.submit_report(0, std::vector<crypto::BlindCell>(kParams.cells(), 0));
  EXPECT_THROW((void)b.finalize_round(), std::logic_error);
}

}  // namespace
}  // namespace eyw::server
