#include "simulator/world.hpp"

#include <gtest/gtest.h>

#include <set>

namespace eyw::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_users = 50;
  cfg.num_websites = 60;
  cfg.num_campaigns = 40;
  cfg.ads_per_website = 5;
  cfg.seed = 7;
  return cfg;
}

TEST(World, BuildsRequestedCounts) {
  const World w = World::build(small_config());
  EXPECT_EQ(w.users.size(), 50u);
  EXPECT_EQ(w.websites.size(), 60u);
  // Global campaigns + one local campaign per site.
  EXPECT_EQ(w.campaigns.size(), 40u + 60u);
}

TEST(World, RejectsEmptyWorld) {
  SimConfig cfg = small_config();
  cfg.num_users = 0;
  EXPECT_THROW(World::build(cfg), std::invalid_argument);
}

TEST(World, DeterministicForSeed) {
  const World a = World::build(small_config());
  const World b = World::build(small_config());
  ASSERT_EQ(a.users.size(), b.users.size());
  for (std::size_t i = 0; i < a.users.size(); ++i) {
    EXPECT_EQ(a.users[i].interests, b.users[i].interests);
    EXPECT_EQ(a.users[i].preferred_sites, b.users[i].preferred_sites);
  }
}

TEST(World, UsersHaveRequestedInterests) {
  const World w = World::build(small_config());
  for (const auto& u : w.users) {
    EXPECT_EQ(u.interests.size(), w.config.interests_per_user);
    std::set<adnet::CategoryId> distinct(u.interests.begin(),
                                         u.interests.end());
    EXPECT_EQ(distinct.size(), u.interests.size());
    for (const auto c : u.interests) EXPECT_LT(c, adnet::kNumCategories);
  }
}

TEST(World, ActivityWithinBounds) {
  const World w = World::build(small_config());
  for (const auto& u : w.users) {
    EXPECT_GE(u.activity, 0.5);
    EXPECT_LT(u.activity, 1.5);
  }
}

TEST(World, TargetedShareMatchesConfig) {
  SimConfig cfg = small_config();
  cfg.pct_targeted_ads = 0.25;
  const World w = World::build(cfg);
  std::size_t targeted = 0, global = 0;
  for (const auto& c : w.campaigns) {
    if (c.pinned_sites.size() == 1 && c.ads.size() == cfg.ads_per_website)
      continue;  // local inventory
    ++global;
    targeted += adnet::is_targeted(c.type);
  }
  EXPECT_EQ(global, cfg.num_campaigns);
  EXPECT_EQ(targeted, 10u);  // 0.25 * 40
}

TEST(World, TargetedCampaignsAreSingleCreativeAndCapped) {
  SimConfig cfg = small_config();
  cfg.frequency_cap = 5;
  const World w = World::build(cfg);
  for (const auto& c : w.campaigns) {
    if (!adnet::is_targeted(c.type)) continue;
    EXPECT_EQ(c.ads.size(), 1u);
    EXPECT_EQ(c.frequency_cap, 5u);
  }
}

TEST(World, IndirectCampaignsHaveDisjointAudience) {
  const World w = World::build(small_config());
  bool any = false;
  for (const auto& c : w.campaigns) {
    if (c.type != adnet::CampaignType::kIndirectTargeted) continue;
    any = true;
    EXPECT_NE(c.audience_category, c.offering_category);
  }
  // Stochastic, but with 40 campaigns at 10% targeted and 20% indirect
  // share the expectation is ~1; use a config where it's guaranteed.
  if (!any) {
    SimConfig cfg = small_config();
    cfg.pct_targeted_ads = 1.0;
    cfg.indirect_share = 1.0;
    cfg.retargeting_share = 0.0;
    const World w2 = World::build(cfg);
    for (const auto& c : w2.campaigns) {
      if (c.type == adnet::CampaignType::kIndirectTargeted) {
        EXPECT_NE(c.audience_category, c.offering_category);
      }
    }
  }
}

TEST(World, StaticSpreadRespectsBounds) {
  SimConfig cfg = small_config();
  cfg.static_spread_min = 0.10;
  cfg.static_spread_max = 0.20;
  const World w = World::build(cfg);
  for (const auto& c : w.campaigns) {
    if (c.type != adnet::CampaignType::kStatic) continue;
    if (c.pinned_sites.size() == 1) continue;  // local inventory
    EXPECT_GE(c.pinned_sites.size(), 6u);   // 0.10 * 60
    EXPECT_LE(c.pinned_sites.size(), 12u);  // 0.20 * 60
  }
}

TEST(World, LocalInventoryCoversEverySite) {
  const World w = World::build(small_config());
  std::set<core::DomainId> covered;
  for (const auto& c : w.campaigns) {
    if (c.type == adnet::CampaignType::kStatic && c.pinned_sites.size() == 1 &&
        c.ads.size() == w.config.ads_per_website)
      covered.insert(c.pinned_sites[0]);
  }
  EXPECT_EQ(covered.size(), w.websites.size());
}

TEST(World, AdIdsGloballyUnique) {
  const World w = World::build(small_config());
  std::set<core::AdId> ids;
  for (const auto& c : w.campaigns)
    for (const auto& ad : c.ads) EXPECT_TRUE(ids.insert(ad.id).second);
}

TEST(World, DemographicsToStringCoverage) {
  EXPECT_STREQ(to_string(Gender::kFemale), "female");
  EXPECT_STREQ(to_string(AgeBracket::k60to70), "60-70");
  EXPECT_STREQ(to_string(IncomeBracket::k90plus), "90k-...");
}

}  // namespace
}  // namespace eyw::sim
