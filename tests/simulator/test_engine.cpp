#include "simulator/engine.hpp"

#include <gtest/gtest.h>

namespace eyw::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_users = 30;
  cfg.num_websites = 40;
  cfg.num_campaigns = 30;
  cfg.ads_per_website = 6;
  cfg.avg_user_visits = 30;
  cfg.pct_targeted_ads = 0.3;
  cfg.audience_cohort = 1.0;  // everyone eligible: deterministic coverage
  cfg.seed = 99;
  return cfg;
}

TEST(Engine, ProducesImpressions) {
  const SimResult r = simulate(small_config());
  EXPECT_GT(r.impressions.size(), 1000u);
}

TEST(Engine, DaysWithinHorizonAndOrdered) {
  const SimResult r = simulate(small_config());
  core::Day prev = 0;
  for (const auto& si : r.impressions) {
    EXPECT_LT(si.impression.day, 7u);
    EXPECT_GE(si.impression.day, prev);
    prev = si.impression.day;
  }
}

TEST(Engine, MultiWeekHorizon) {
  SimConfig cfg = small_config();
  cfg.weeks = 2;
  const SimResult r = simulate(cfg);
  core::Day max_day = 0;
  for (const auto& si : r.impressions)
    max_day = std::max(max_day, si.impression.day);
  EXPECT_GE(max_day, 7u);
  EXPECT_LT(max_day, 14u);
}

TEST(Engine, ImpressionsReferenceRealEntities) {
  Engine engine(World::build(small_config()));
  const SimResult r = engine.run();
  for (const auto& si : r.impressions) {
    EXPECT_LT(si.impression.user, 30u);
    EXPECT_LT(si.impression.domain, 40u);
    EXPECT_NE(engine.ad_server().find_ad(si.impression.ad), nullptr);
  }
}

TEST(Engine, GroundTruthConsistentWithImpressions) {
  const SimResult r = simulate(small_config());
  for (const auto& si : r.impressions) {
    if (si.targeted_delivery) {
      EXPECT_TRUE(r.is_targeted(si.impression.user, si.impression.ad));
    }
  }
  // Every ground-truth pair must appear in the stream.
  for (const auto& [pair, targeted] : r.targeted_pair) {
    (void)targeted;
    bool found = false;
    for (const auto& si : r.impressions) {
      if (si.impression.user == pair.first && si.impression.ad == pair.second) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
    if (!found) break;  // avoid quadratic blowup on failure
  }
}

TEST(Engine, TargetedDeliveriesOnlyFromTargetedCampaigns) {
  const SimResult r = simulate(small_config());
  for (const auto& si : r.impressions) {
    if (si.targeted_delivery) {
      EXPECT_TRUE(adnet::is_targeted(si.campaign_type));
    }
    if (!adnet::is_targeted(si.campaign_type)) {
      EXPECT_FALSE(si.targeted_delivery);
    }
  }
}

TEST(Engine, CrawlerNeverSeesTargetedAds) {
  const SimResult r = simulate(small_config());
  ASSERT_FALSE(r.crawler_ads.empty());
  // Crawler ads must never coincide with any targeted ground-truth ad.
  std::set<core::AdId> targeted_ads;
  for (const auto& [pair, targeted] : r.targeted_pair)
    if (targeted) targeted_ads.insert(pair.second);
  for (const core::AdId ad : r.crawler_ads)
    EXPECT_FALSE(targeted_ads.contains(ad)) << ad;
}

TEST(Engine, CrawlerViewCoversManySites) {
  SimConfig cfg = small_config();
  cfg.crawler_passes = 2;
  const SimResult r = simulate(cfg);
  EXPECT_GT(r.crawler_view.size(), 30u);  // nearly all 40 sites have ads
}

TEST(Engine, DeterministicForSeed) {
  const SimResult a = simulate(small_config());
  const SimResult b = simulate(small_config());
  ASSERT_EQ(a.impressions.size(), b.impressions.size());
  for (std::size_t i = 0; i < a.impressions.size(); i += 997) {
    EXPECT_EQ(a.impressions[i].impression, b.impressions[i].impression);
  }
}

TEST(Engine, FrequencyCapBoundsPerUserRepetitions) {
  SimConfig cfg = small_config();
  cfg.frequency_cap = 3;
  const SimResult r = simulate(cfg);
  std::map<std::pair<core::UserId, core::AdId>, int> reps;
  for (const auto& si : r.impressions) {
    if (si.targeted_delivery)
      ++reps[{si.impression.user, si.impression.ad}];
  }
  ASSERT_FALSE(reps.empty());
  for (const auto& [pair, n] : reps) EXPECT_LE(n, 3);
}

TEST(Engine, HigherCapMeansMoreRepetitions) {
  SimConfig lo = small_config();
  lo.frequency_cap = 1;
  SimConfig hi = small_config();
  hi.frequency_cap = 10;
  auto mean_reps = [](const SimResult& r) {
    std::map<std::pair<core::UserId, core::AdId>, int> reps;
    for (const auto& si : r.impressions)
      if (si.targeted_delivery) ++reps[{si.impression.user, si.impression.ad}];
    double acc = 0;
    for (const auto& [p, n] : reps) acc += n;
    return reps.empty() ? 0.0 : acc / static_cast<double>(reps.size());
  };
  EXPECT_LT(mean_reps(simulate(lo)) + 0.5, mean_reps(simulate(hi)));
}

}  // namespace
}  // namespace eyw::sim
