// The socket transport binding: length framing, partial-read robustness
// (truncation at every byte boundary of a framed reply), oversized-length
// rejection before allocation on both ends, peer disconnects during every
// round phase, and fault-plan parity — the same FaultInjectingTransport
// plan must surface the same ErrorCode over TCP as over loopback, because
// the transports are supposed to be observationally interchangeable.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>

#include "proto/message.hpp"
#include "proto/tcp.hpp"
#include "proto/transport.hpp"
#include "server/backend.hpp"
#include "server/cluster.hpp"
#include "server/endpoint.hpp"
#include "server/remote_backend.hpp"
#include "server/round.hpp"

namespace eyw::proto {
namespace {

const sketch::CmsParams kParams{.depth = 2, .width = 8};

server::BackendConfig small_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 5,
          .id_space = 100,
          .users_rule = core::ThresholdRule::kMean};
}

std::vector<std::uint32_t> sample_cells() {
  std::vector<std::uint32_t> cells(kParams.cells());
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i] = static_cast<std::uint32_t>(0x1000 + i * 17);
  return cells;
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ProtoError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

std::vector<std::uint8_t> with_prefix(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> out(4 + frame.size());
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  std::memcpy(out.data() + 4, frame.data(), frame.size());
  return out;
}

void send_raw(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Read one length-framed message off a blocking socket; empty on EOF at a
/// frame boundary.
std::vector<std::uint8_t> read_framed(int fd) {
  std::uint8_t prefix[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::recv(fd, prefix + got, 4 - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return {};
    got += static_cast<std::size_t>(n);
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  std::vector<std::uint8_t> frame(len);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, frame.data() + off, len - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return {};
    off += static_cast<std::size_t>(n);
  }
  return frame;
}

/// A deliberately misbehaving server: accepts connections sequentially and
/// runs `session` on each accepted socket until stopped. Used where
/// FrameServer is too well-behaved to produce the failure under test.
class RawServer {
 public:
  explicit RawServer(std::function<void(int fd)> session)
      : session_(std::move(session)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_,
                            reinterpret_cast<struct sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: shut down
        session_(fd);
        ::close(fd);
      }
    });
  }

  ~RawServer() {
    // shutdown() unblocks accept() on every platform close() alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  std::function<void(int)> session_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Wait until every connection worker has exited (and therefore flushed
/// its stats) after the client side closed.
void wait_idle(const FrameServer& server) {
  for (int i = 0; i < 2'000 && server.active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.active_connections(), 0u);
}

TcpOptions fast_options() {
  // Tight timeouts so failure-path tests do not stall the suite.
  return {.connect_timeout = std::chrono::milliseconds(1'000),
          .io_timeout = std::chrono::milliseconds(2'000),
          .connect_attempts = 3,
          .connect_backoff = std::chrono::milliseconds(10)};
}

TEST(TcpTransport, ExchangeRoundTripAndBothSidesCountFrameBytes) {
  FrameServer server([](std::span<const std::uint8_t> frame) {
    (void)decode_envelope(frame);  // must be a valid envelope
    return encode_ack();
  });
  TcpTransport client("127.0.0.1", server.port(), fast_options());

  const auto request = BlindedReport{.participant = 1,
                                     .params = kParams,
                                     .cells = sample_cells()}
                           .encode(/*round=*/0);
  const auto ack = encode_ack();
  for (int i = 0; i < 3; ++i) {
    const auto reply = client.exchange(request);
    EXPECT_NO_THROW((void)expect_reply(reply, MsgKind::kAck));
  }

  // TransportStats count envelope bytes only — identical on both sides,
  // with the 4-byte prefix invisible (it is transport framing).
  EXPECT_EQ(client.stats().messages_sent, 3u);
  EXPECT_EQ(client.stats().bytes_sent, 3 * request.size());
  EXPECT_EQ(client.stats().bytes_received, 3 * ack.size());
  client.close();
  wait_idle(server);
  const TransportStats server_stats = server.stats();
  EXPECT_EQ(server_stats.messages_received, 3u);
  EXPECT_EQ(server_stats.bytes_received, client.stats().bytes_sent);
  EXPECT_EQ(server_stats.bytes_sent, client.stats().bytes_received);
}

TEST(TcpTransport, EmptyHandlerReplyArrivesAsEmptyFrame) {
  // A handler that returns nothing (the loopback "lost response" shape)
  // must surface client-side as an empty reply, not a hang or an error.
  FrameServer server(
      [](std::span<const std::uint8_t>) { return std::vector<std::uint8_t>{}; });
  TcpTransport client("127.0.0.1", server.port(), fast_options());
  const auto reply = client.exchange(encode_ack());
  EXPECT_TRUE(reply.empty());
  EXPECT_THROW((void)expect_reply(reply, MsgKind::kAck), ProtoError);
  // The connection survives an empty reply (it is a legal frame).
  EXPECT_TRUE(client.connected());
}

TEST(TcpTransport, ConnectRetriesThenFailsWithInternal) {
  // Nothing listens on this socket's port once it is closed.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<struct sockaddr*>(&addr),
                          &len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  TcpTransport client("127.0.0.1", dead_port, fast_options());
  EXPECT_EQ(code_of([&] { (void)client.exchange(encode_ack()); }),
            ErrorCode::kInternal);
}

TEST(TcpTransport, TruncatedReplyAtEveryByteBoundary) {
  const auto ack = encode_ack();
  const auto framed = with_prefix(ack);
  std::atomic<std::size_t> cut{0};
  RawServer server([&](int fd) {
    (void)read_framed(fd);  // consume the request
    const std::size_t keep = cut.load();
    send_raw(fd, std::span<const std::uint8_t>(framed.data(), keep));
    // close() in RawServer truncates the stream at `keep` bytes.
  });

  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    cut.store(keep);
    TcpTransport client("127.0.0.1", server.port(), fast_options());
    if (keep == 0) {
      // EOF before any reply byte: the response is lost, not the framing
      // broken — empty reply, same as FaultPlan::kDropResponse.
      EXPECT_TRUE(client.exchange(ack).empty()) << "keep=" << keep;
    } else {
      // EOF mid-prefix or mid-body: kTruncated, never a hang or a bogus
      // frame.
      EXPECT_EQ(code_of([&] { (void)client.exchange(ack); }),
                ErrorCode::kTruncated)
          << "keep=" << keep;
    }
    EXPECT_FALSE(client.connected());  // broken stream is never reused
  }

  // The unmutilated reply still decodes.
  cut.store(framed.size());
  TcpTransport client("127.0.0.1", server.port(), fast_options());
  EXPECT_NO_THROW((void)expect_reply(client.exchange(ack), MsgKind::kAck));
}

TEST(TcpTransport, OversizedReplyLengthRejectedBeforeAllocation) {
  RawServer server([&](int fd) {
    (void)read_framed(fd);
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GB declared
    send_raw(fd, huge);
  });
  TcpTransport client("127.0.0.1", server.port(), fast_options());
  EXPECT_EQ(code_of([&] { (void)client.exchange(encode_ack()); }),
            ErrorCode::kOversized);
  EXPECT_FALSE(client.connected());
}

TEST(FrameServer, OversizedRequestLengthAnsweredWithErrorThenClosed) {
  FrameServer server(
      [](std::span<const std::uint8_t>) { return encode_ack(); });
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  send_raw(fd, huge);
  const auto reply = read_framed(fd);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(code_of([&] { (void)expect_reply(reply, MsgKind::kAck); }),
            ErrorCode::kOversized);
  // The server closed the connection: the stream past an unread body is
  // unsynchronized.
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST(FrameServer, StalledMidFrameConnectionDroppedAfterIoTimeout) {
  // A peer that starts a frame and stalls must be disconnected once
  // io_timeout expires — it cannot pin a connection slot forever.
  FrameServer server([](std::span<const std::uint8_t>) { return encode_ack(); },
                     {.io_timeout = std::chrono::milliseconds(150)});
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t partial[2] = {0x01, 0x00};  // 2 of 4 prefix bytes
  send_raw(fd, partial);
  // ... then stall. The server must close the connection; recv observes
  // EOF well before the test times out.
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  wait_idle(server);
  ::close(fd);
}

TEST(FrameServer, DrippingFrameBodyDroppedAtAbsoluteDeadline) {
  // One byte per 100 ms is "progress" on every poll, but the io_timeout
  // deadline is absolute per frame: the drip must not extend it.
  FrameServer server([](std::span<const std::uint8_t>) { return encode_ack(); },
                     {.io_timeout = std::chrono::milliseconds(250)});
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t prefix[4] = {50, 0, 0, 0};  // declare a 50-byte body
  send_raw(fd, prefix);
  int sent = 0;
  for (; sent < 50; ++sent) {
    std::uint8_t probe = 0;
    const ssize_t r = ::recv(fd, &probe, 1, MSG_DONTWAIT);
    if (r == 0) break;  // server dropped us
    const std::uint8_t byte = 0xab;
    if (::send(fd, &byte, 1, MSG_NOSIGNAL) <= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_LT(sent, 50) << "server accepted a 5-second drip past a 250 ms "
                         "frame deadline";
  ::close(fd);
  wait_idle(server);
}

TEST(FrameServer, MalformedEnvelopeBytesAnsweredWithErrorFrame) {
  server::BackendServer backend(small_config());
  server::BackendEndpoint endpoint(backend);
  FrameServer server([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });
  TcpTransport client("127.0.0.1", server.port(), fast_options());
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(client.exchange(garbage), MsgKind::kAck);
            }),
            ErrorCode::kBadMagic);
  // The connection stays usable — a decode failure is an answered error,
  // not a framing violation.
  EXPECT_TRUE(client.connected());
}

/// The parity check: the same FaultInjectingTransport plan must produce
/// the same observable ErrorCode whether the inner transport is loopback
/// or a real socket.
TEST(TcpTransport, FaultPlanParityWithLoopback) {
  const BlindedReport report{
      .participant = 0, .params = kParams, .cells = sample_cells()};
  const auto frame = report.encode(0);

  const FaultPlan plans[] = {
      {.action = FaultPlan::Action::kTruncateRequest,
       .nth = 0,
       .offset = frame.size() - 3},
      {.action = FaultPlan::Action::kCorruptRequest, .nth = 0, .offset = 0},
      {.action = FaultPlan::Action::kDropResponse, .nth = 0},
  };

  for (const FaultPlan& plan : plans) {
    // Loopback oracle.
    server::BackendServer loop_backend(small_config());
    server::BackendEndpoint loop_endpoint(loop_backend);
    loop_backend.begin_round(0, 2);
    LoopbackTransport loop([&](std::span<const std::uint8_t> f) {
      return loop_endpoint.handle(f);
    });
    FaultInjectingTransport faulty_loop(loop, plan);
    const ErrorCode want = code_of([&] {
      (void)expect_reply(faulty_loop.exchange(frame), MsgKind::kAck);
    });

    // Same plan over a real socket.
    server::BackendServer tcp_backend(small_config());
    server::BackendEndpoint tcp_endpoint(tcp_backend);
    tcp_backend.begin_round(0, 2);
    FrameServer server([&](std::span<const std::uint8_t> f) {
      return tcp_endpoint.handle(f);
    });
    TcpTransport tcp("127.0.0.1", server.port(), fast_options());
    FaultInjectingTransport faulty_tcp(tcp, plan);
    const ErrorCode got = code_of([&] {
      (void)expect_reply(faulty_tcp.exchange(frame), MsgKind::kAck);
    });

    EXPECT_EQ(got, want) << "plan action "
                         << static_cast<int>(plan.action);
    EXPECT_EQ(tcp_backend.reports_received(),
              loop_backend.reports_received())
        << "plan action " << static_cast<int>(plan.action);
  }
}

/// Peer disconnect during every phase of a full round: a server that dies
/// after its nth reply must surface as ProtoError on the operator side —
/// in whichever phase the cut lands — never as a hang or a bogus result.
TEST(TcpTransport, PeerDisconnectDuringEachRoundPhase) {
  using client::BrowserExtension;
  const std::size_t n_clients = 4;
  // Exchange sequence of a full round over the control plane:
  //   0: begin-round, 1..4: reports, 5: missing-query, 6: finalize.
  const std::size_t cuts[] = {0, 2, 5, 6};

  for (const std::size_t cut : cuts) {
    server::BackendCluster cluster(small_config(), 2);
    server::BackendEndpoint endpoint(cluster, /*serve_control=*/true);
    std::atomic<std::size_t> served{0};
    RawServer server([&](int fd) {
      for (;;) {
        const auto request = read_framed(fd);
        if (request.empty()) return;
        if (served.fetch_add(1) == cut) return;  // die without replying
        const auto reply = endpoint.handle(request);
        send_raw(fd, with_prefix(reply));
      }
    });

    client::HashUrlMapper mapper(small_config().id_space);
    const client::ExtensionConfig ecfg{
        .detector = {},
        .cms_params = kParams,
        .cms_hash_seed = small_config().cms_hash_seed};
    std::vector<BrowserExtension> exts;
    for (std::size_t u = 0; u < n_clients; ++u)
      exts.emplace_back(static_cast<core::UserId>(u), ecfg, mapper);

    util::Rng rng(4096);
    const crypto::DhGroup group = crypto::DhGroup::generate(rng, 128);
    TcpTransport link("127.0.0.1", server.port(), fast_options());
    server::RemoteBackend remote(link, small_config());
    server::RoundCoordinator coordinator(
        group, std::span<BrowserExtension>(exts), remote, /*seed=*/7);
    EXPECT_THROW((void)coordinator.run_full_round(0), ProtoError)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace eyw::proto
