// The client reactor's own invariants: pipelined exchanges on one
// connection correlate completions to requests even when completions and
// later submissions interleave, per-exchange deadlines fail a stalled
// exchange (and the connection under it) without wedging the channel,
// connect retry/backoff is jittered but deterministic, the sync adapter
// gives Transport users unchanged blocking semantics, EINTR never breaks
// the raw frame loops, and — the headline — one process drives a
// 1024-reporter swarm with resident client-side threads == reactor
// shards, asserted from /proc, finishing a round bit-identical to the
// same submissions applied in-process.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "proto/backoff.hpp"
#include "proto/client_reactor.hpp"
#include "proto/message.hpp"
#include "proto/raw_frame_io.hpp"
#include "proto/tcp.hpp"
#include "server/cluster.hpp"
#include "server/dispatcher.hpp"
#include "server/endpoint.hpp"
#include "server/remote_backend.hpp"

namespace eyw::proto {
namespace {

using raw::process_threads;

/// Collects one exchange outcome and lets a test thread wait for it.
struct Caught {
  std::mutex mu;
  std::condition_variable cv;
  AsyncResult result;
  bool done = false;

  AsyncCompletionFn sink() {
    return [this](AsyncResult r) {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
      cv.notify_one();
    };
  }

  AsyncResult wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

// ------------------------------------------------------------ pipelining

TEST(ClientReactor, PipelinedExchangesCorrelateInSubmissionOrder) {
  // The server tags each reply with its dispatch sequence number; sixteen
  // exchanges pipelined on one connection must complete in submission
  // order, each seeing its own position — while earlier completions fire
  // with later exchanges still in flight (out-of-order completion
  // relative to the *last* submission, which the FIFO must tolerate).
  std::atomic<int> seq{0};
  FrameServer server(
      [&](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);
        return ErrorReply{.code = ErrorCode::kOk,
                          .detail = std::to_string(
                              seq.fetch_add(1, std::memory_order_relaxed))}
            .encode();
      },
      {.reactor_shards = 1});

  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open("127.0.0.1", server.port());

  constexpr int kPipelined = 16;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> completions;  // details, in completion order
  for (int i = 0; i < kPipelined; ++i) {
    channel->exchange_async(
        encode_oprf_key_query(), [&](AsyncResult r) {
          ASSERT_TRUE(r.ok());
          const ErrorReply reply =
              ErrorReply::decode(decode_envelope(r.reply));
          std::lock_guard<std::mutex> lock(mu);
          completions.push_back(reply.detail);
          cv.notify_one();
        });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return completions.size() == static_cast<std::size_t>(kPipelined);
    });
  }
  for (int i = 0; i < kPipelined; ++i)
    EXPECT_EQ(completions[static_cast<std::size_t>(i)], std::to_string(i))
        << "completion " << i << " correlated to the wrong request";

  const TransportStats stats = channel->stats();
  EXPECT_EQ(stats.messages_sent, static_cast<std::uint64_t>(kPipelined));
  EXPECT_EQ(stats.messages_received, static_cast<std::uint64_t>(kPipelined));
}

TEST(ClientReactor, ExchangeSubmittedFromCompletionReusesTheConnection) {
  // Chaining from inside a completion (the natural async style) must be
  // legal: submit-on-complete five levels deep, one connection.
  FrameServer server(
      [](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);
        return encode_ack();
      },
      {.reactor_shards = 1});
  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open("127.0.0.1", server.port());

  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  std::function<void(int)> chain = [&](int depth) {
    channel->exchange_async(encode_oprf_key_query(), [&, depth](AsyncResult r) {
      ASSERT_TRUE(r.ok());
      (void)expect_reply(r.reply, MsgKind::kAck);
      if (depth > 1) chain(depth - 1);
      std::lock_guard<std::mutex> lock(mu);
      ++completed;
      cv.notify_one();
    });
  };
  chain(5);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completed == 5; });
  EXPECT_EQ(channel->stats().messages_sent, 5u);
  EXPECT_EQ(server.stats().reactor.connections_accepted, 1u);
}

TEST(ClientReactor, ReleasedChannelsAreReclaimed) {
  // A long-lived reactor opening short-lived channels must not
  // accumulate sockets: dropping the last ClientChannel reference closes
  // the connection (once in-flight completions fired) and frees the
  // per-channel state.
  FrameServer server([](std::span<const std::uint8_t> frame) {
    (void)decode_envelope(frame);
    return encode_ack();
  });
  ClientReactor reactor({.shards = 1});
  for (int i = 0; i < 8; ++i) {
    auto channel = reactor.open("127.0.0.1", server.port());
    SyncTransportAdapter link(*channel);
    (void)link.exchange(encode_oprf_key_query());
    EXPECT_GE(server.active_connections(), 1u);
  }  // facade dropped each iteration: connection must go away
  for (int i = 0; i < 2'000 && server.active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.stats().reactor.connections_accepted, 8u);
  EXPECT_EQ(reactor.counters().exchanges_completed, 8u);

  // The reactor itself is still healthy for new channels.
  auto channel = reactor.open("127.0.0.1", server.port());
  SyncTransportAdapter link(*channel);
  EXPECT_FALSE(link.exchange(encode_oprf_key_query()).empty());
}

// -------------------------------------------------------------- deadlines

TEST(ClientReactor, DeadlineFailsStalledExchangeAndChannelRecovers) {
  // The server answers the first frame, withholds the second's completion
  // forever: the client's per-exchange deadline must fail exchanges 2 and
  // 3 (the stream past a timed-out reply is unsynchronizable), count a
  // deadline drop, and a later exchange must transparently reconnect.
  std::atomic<int> count{0};
  std::mutex held_mu;
  std::vector<CompletionFn> held;  // withheld completions (released at end)
  FrameServer server(
      [&](std::vector<std::uint8_t> frame, CompletionFn done) {
        (void)frame;
        if (count.fetch_add(1, std::memory_order_relaxed) == 1) {
          std::lock_guard<std::mutex> lock(held_mu);
          held.push_back(std::move(done));  // never answered
          return;
        }
        done(encode_ack());
      },
      {.reactor_shards = 1});

  ClientReactor reactor(
      {.shards = 1, .io_timeout = std::chrono::milliseconds(200)});
  auto channel = reactor.open("127.0.0.1", server.port());

  Caught first, second, third;
  channel->exchange_async(encode_oprf_key_query(), first.sink());
  channel->exchange_async(encode_oprf_key_query(), second.sink());
  channel->exchange_async(encode_oprf_key_query(), third.sink());

  const AsyncResult r1 = first.wait();
  ASSERT_TRUE(r1.ok());
  (void)expect_reply(r1.reply, MsgKind::kAck);

  for (Caught* caught : {&second, &third}) {
    const AsyncResult r = caught->wait();
    ASSERT_FALSE(r.ok());
    try {
      std::rethrow_exception(r.error);
    } catch (const ProtoError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInternal);
      EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
    }
  }
  EXPECT_GE(reactor.counters().deadline_drops, 1u);

  // The channel reconnects for the next exchange.
  Caught fourth;
  channel->exchange_async(encode_oprf_key_query(), fourth.sink());
  const AsyncResult r4 = fourth.wait();
  ASSERT_TRUE(r4.ok());
  (void)expect_reply(r4.reply, MsgKind::kAck);
  EXPECT_GE(reactor.counters().connects_established, 2u);
}

// --------------------------------------------------------- connect/backoff

TEST(ClientReactor, ConnectRetriesWithBackoffUntilServerAppears) {
  // Reserve a port, start the client against it with nothing listening,
  // then bring the server up: queued exchanges must complete once a retry
  // lands, with the retries visible in the counters.
  std::uint16_t port = 0;
  {
    FrameServer probe([](std::span<const std::uint8_t>) {
      return encode_ack();
    });
    port = probe.port();
  }  // port released; nothing listens on it now

  ClientReactor reactor({.shards = 1,
                         .connect_timeout = std::chrono::milliseconds(200),
                         .connect_attempts = 20,
                         .connect_backoff = std::chrono::milliseconds(20)});
  auto channel = reactor.open("127.0.0.1", port);
  Caught caught;
  channel->exchange_async(encode_oprf_key_query(), caught.sink());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  FrameServer server(
      [](std::span<const std::uint8_t>) { return encode_ack(); },
      {.port = port});
  const AsyncResult r = caught.wait();
  ASSERT_TRUE(r.ok());
  (void)expect_reply(r.reply, MsgKind::kAck);
  EXPECT_GE(reactor.counters().connect_retries, 1u);
  EXPECT_EQ(reactor.counters().connects_established, 1u);
}

TEST(ClientReactor, ExchangeFailsAfterConnectAttemptsExhausted) {
  std::uint16_t port = 0;
  {
    FrameServer probe([](std::span<const std::uint8_t>) {
      return encode_ack();
    });
    port = probe.port();
  }
  ClientReactor reactor({.shards = 1,
                         .connect_attempts = 2,
                         .connect_backoff = std::chrono::milliseconds(5)});
  auto channel = reactor.open("127.0.0.1", port);
  Caught caught;
  channel->exchange_async(encode_oprf_key_query(), caught.sink());
  const AsyncResult r = caught.wait();
  ASSERT_FALSE(r.ok());
  try {
    std::rethrow_exception(r.error);
  } catch (const ProtoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("failed after"), std::string::npos);
  }
}

TEST(Backoff, JitterIsDeterministicPerSeedAndBounded) {
  using Millis = std::chrono::milliseconds;
  std::uint64_t a = 17, b = 17, c = 18;
  std::vector<Millis> seq_a, seq_b, seq_c;
  for (int i = 0; i < 64; ++i) {
    seq_a.push_back(jittered_backoff(Millis(100), a));
    seq_b.push_back(jittered_backoff(Millis(100), b));
    seq_c.push_back(jittered_backoff(Millis(100), c));
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed, same delays: tests reproducible
  EXPECT_NE(seq_a, seq_c);  // different seed, different wave
  for (const Millis d : seq_a) {
    EXPECT_GE(d, Millis(50));
    EXPECT_LE(d, Millis(150));
  }
  // Zero base stays zero: jitter cannot invent a wait.
  std::uint64_t z = 1;
  EXPECT_EQ(jittered_backoff(Millis(0), z), Millis(0));
}

// ------------------------------------------------------------ sync adapter

TEST(SyncTransportAdapter, BlockingExchangeOverChannelMatchesTcpTransport) {
  // The same request against the same server through TcpTransport and
  // through the adapter-over-channel must produce identical reply bytes
  // and identical stats accounting.
  FrameServer server([](std::span<const std::uint8_t> frame) {
    (void)decode_envelope(frame);
    return encode_ack();
  });

  TcpTransport blocking("127.0.0.1", server.port());
  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open("127.0.0.1", server.port());
  SyncTransportAdapter adapted(*channel);

  const auto request = encode_oprf_key_query();
  const auto want = blocking.exchange(request);
  const auto got = adapted.exchange(request);
  EXPECT_EQ(want, got);
  EXPECT_EQ(blocking.stats().bytes_sent, adapted.stats().bytes_sent);
  EXPECT_EQ(blocking.stats().bytes_received, adapted.stats().bytes_received);
  EXPECT_EQ(blocking.stats().messages_sent, adapted.stats().messages_sent);
}

TEST(SyncTransportAdapter, ChannelErrorSurfacesAsThrownProtoError) {
  // Nothing listening and one connect attempt: the async failure must
  // come out of the blocking call as the thrown ProtoError a TcpTransport
  // user would see.
  std::uint16_t port = 0;
  {
    FrameServer probe([](std::span<const std::uint8_t>) {
      return encode_ack();
    });
    port = probe.port();
  }
  ClientReactor reactor({.shards = 1,
                         .connect_attempts = 1,
                         .connect_backoff = std::chrono::milliseconds(1)});
  auto channel = reactor.open("127.0.0.1", port);
  SyncTransportAdapter adapted(*channel);
  try {
    (void)adapted.exchange(encode_oprf_key_query());
    FAIL() << "exchange over a dead port succeeded";
  } catch (const ProtoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

// ------------------------------------------------------------------ EINTR

extern "C" void eintr_noop_handler(int) {}

/// Install a no-op SIGUSR1 handler *without* SA_RESTART, so a landing
/// signal makes blocking send/recv return EINTR instead of resuming —
/// the exact condition the raw_frame_io loops must absorb.
void install_eintr_handler() {
  struct sigaction sa {};
  sa.sa_handler = eintr_noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, nullptr), 0);
}

TEST(RawFrameIo, ReadFramedSurvivesEintrStorm) {
  install_eintr_handler();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  std::vector<std::uint8_t> frame(64 * 1024);
  for (std::size_t i = 0; i < frame.size(); ++i)
    frame[i] = static_cast<std::uint8_t>(i * 131);
  const auto framed = raw::with_prefix(frame);

  std::vector<std::uint8_t> got;
  std::thread reader([&] { got = raw::read_framed(sv[0]); });
  const pthread_t reader_handle = reader.native_handle();

  // Dribble the frame in small chunks, bombarding the blocked reader with
  // signals between chunks so recv() keeps being interrupted mid-wait.
  std::size_t off = 0;
  while (off < framed.size()) {
    for (int k = 0; k < 8; ++k) (void)pthread_kill(reader_handle, SIGUSR1);
    const std::size_t n = std::min<std::size_t>(4096, framed.size() - off);
    ASSERT_TRUE(raw::send_all(
        sv[1], std::span<const std::uint8_t>(framed.data() + off, n)));
    off += n;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  reader.join();
  EXPECT_EQ(got, frame);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(RawFrameIo, SendAllSurvivesEintrAgainstSlowReader) {
  install_eintr_handler();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink the send buffer so send_all actually blocks on the slow reader
  // (and so EINTR interrupts a *waiting* send, not an instant one).
  const int small = 4096;
  (void)::setsockopt(sv[1], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));

  std::vector<std::uint8_t> frame(256 * 1024);
  for (std::size_t i = 0; i < frame.size(); ++i)
    frame[i] = static_cast<std::uint8_t>(i * 29);
  const auto framed = raw::with_prefix(frame);

  std::atomic<bool> sent_ok{false};
  std::thread writer(
      [&] { sent_ok.store(raw::send_all(sv[1], framed)); });
  const pthread_t writer_handle = writer.native_handle();

  std::vector<std::uint8_t> got;
  std::uint8_t buf[1024];
  while (got.size() < framed.size()) {
    for (int k = 0; k < 4; ++k) (void)pthread_kill(writer_handle, SIGUSR1);
    const ssize_t n = ::recv(sv[0], buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    got.insert(got.end(), buf, buf + n);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  writer.join();
  EXPECT_TRUE(sent_ok.load());
  EXPECT_EQ(got, framed);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ------------------------------------------------------------- the swarm

TEST(ClientReactor, ThousandReporterSwarmOnTwoThreadsBitIdenticalRound) {
  // The acceptance test of the outbound refactor, both ends in this
  // process: a server stack (2-shard cluster behind a lane-sharded
  // dispatcher behind the epoll FrameServer) and 1024 reporter channels
  // plus a pipelined control channel on a 2-shard client reactor. Client
  // thread budget is measured from /proc around the reactor's lifetime;
  // the finalized aggregate must equal the same 1024 submissions applied
  // to an in-process cluster, bit for bit; and both sides' reactor
  // counters must account for every connection and every frame.
  constexpr std::size_t kReporters = 1024;
  const server::BackendConfig config{
      .cms_params = {.depth = 4, .width = 64},
      .cms_hash_seed = 9,
      .id_space = 2'000,
      .users_rule = core::ThresholdRule::kMean};

  server::BackendCluster cluster(config, 2);
  server::BackendEndpoint endpoint(cluster, /*serve_control=*/true);
  server::AsyncDispatcher dispatcher(
      [&](std::span<const std::uint8_t> frame) {
        return endpoint.handle(frame);
      },
      /*lanes=*/2, server::cluster_lane_router(cluster),
      server::control_plane_barrier());
  FrameServer server(dispatcher.handler(),
                     {.backlog = kReporters + 8,  // swarm connects in a burst
                      .reactor_shards = 1,
                      .max_connections = kReporters + 8});
  dispatcher.set_frame_recycler(server.frame_recycler());

  const auto make_cells = [&](std::size_t i) {
    std::vector<std::uint32_t> cells(config.cms_params.cells());
    for (std::size_t c = 0; c < cells.size(); ++c)
      cells[c] = static_cast<std::uint32_t>(i * 40503u + c * 7u);
    return cells;
  };

  const std::size_t threads_before = process_threads();
  std::size_t threads_at_teardown = 0;
  std::size_t reactor_shards = 0;
  {
    ClientReactor reactor({.shards = 2, .backoff_jitter_seed = 99});
    reactor_shards = reactor.shards();
    EXPECT_EQ(process_threads() - threads_before, reactor.shards())
        << "client reactor spawned threads beyond its shards";

    auto control = reactor.open("127.0.0.1", server.port());
    server::RemoteBackend remote(*control, config);
    remote.begin_round(/*round=*/7, kReporters);

    std::vector<std::shared_ptr<ClientChannel>> channels;
    channels.reserve(kReporters);
    for (std::size_t i = 0; i < kReporters; ++i)
      channels.push_back(reactor.open("127.0.0.1", server.port()));

    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::atomic<std::size_t> acked{0};
    for (std::size_t i = 0; i < kReporters; ++i) {
      const auto frame = BlindedReport{
          .participant = static_cast<std::uint32_t>(i),
          .params = config.cms_params,
          .cells = make_cells(i)}
                             .encode(/*round=*/7);
      channels[i]->exchange_async(frame, [&](AsyncResult r) {
        if (r.ok()) {
          try {
            (void)expect_reply(r.reply, MsgKind::kAck);
            acked.fetch_add(1, std::memory_order_relaxed);
          } catch (const ProtoError&) {
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        cv.notify_one();
      });
    }

    // Every reporter has its exchange in flight: the thread budget claim,
    // measured at full load. Client-side resident threads == shards.
    EXPECT_EQ(process_threads() - threads_before, reactor.shards())
        << "client-side threads grew with connection count";

    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == kReporters; });
    }
    EXPECT_EQ(acked.load(), kReporters);
    EXPECT_EQ(process_threads() - threads_before, reactor.shards());

    // (finalize below fans the id-space scan across the process-wide
    // shared ThreadPool — those threads are permanent and not the
    // transport's, so the thread-budget checks all happen before it.)
    EXPECT_TRUE(remote.missing_participants().empty());
    const server::RoundResult got = remote.finalize_round();

    // Reference: identical submissions, in-process. Bit-identical or the
    // transport was observable.
    server::BackendCluster reference(config, 2);
    reference.begin_round(/*round=*/7, kReporters);
    for (std::size_t i = 0; i < kReporters; ++i)
      reference.submit_report(i, make_cells(i));
    const server::RoundResult want = reference.finalize_round();
    const auto want_cells = want.aggregate.cells();
    const auto got_cells = got.aggregate.cells();
    ASSERT_EQ(want_cells.size(), got_cells.size());
    for (std::size_t c = 0; c < want_cells.size(); ++c)
      ASSERT_EQ(want_cells[c], got_cells[c]) << "cell " << c;
    EXPECT_EQ(want.users_threshold, got.users_threshold);
    EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
    EXPECT_EQ(got.reports, kReporters);

    // Counters, both ends: every connection accounted, nothing refused,
    // nothing deadline-dropped, and the cross-thread marshalling shows up
    // as eventfd wakeups on both reactors.
    const ClientReactorCounters cc = reactor.counters();
    EXPECT_EQ(cc.connects_established, kReporters + 1);
    EXPECT_EQ(cc.exchanges_started,
              kReporters + 1 /*begin*/ + 1 /*missing*/ + 1 /*finalize*/);
    EXPECT_EQ(cc.exchanges_completed, cc.exchanges_started);
    EXPECT_EQ(cc.exchanges_failed, 0u);
    EXPECT_EQ(cc.deadline_drops, 0u);
    EXPECT_GT(cc.eventfd_wakeups, 0u);

    const FrameServerStats ss = server.stats();
    EXPECT_EQ(ss.reactor.connections_accepted, kReporters + 1);
    EXPECT_EQ(ss.reactor.connections_refused, 0u);
    EXPECT_EQ(ss.reactor.deadline_drops, 0u);
    EXPECT_GT(ss.reactor.eventfd_wakeups, 0u);
    EXPECT_EQ(ss.messages_received, cc.exchanges_started);
    std::uint64_t client_bytes_sent = control->stats().bytes_sent;
    for (const auto& ch : channels)
      client_bytes_sent += ch->stats().bytes_sent;
    EXPECT_EQ(ss.bytes_received, client_bytes_sent);

    threads_at_teardown = process_threads();
  }
  // Reactor destroyed: exactly its shard threads are gone again.
  for (int i = 0;
       i < 2'000 && process_threads() != threads_at_teardown - reactor_shards;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(process_threads(), threads_at_teardown - reactor_shards);
}

}  // namespace
}  // namespace eyw::proto
