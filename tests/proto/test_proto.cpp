// The wire API: envelope framing, every typed message, the transport
// layer, fault injection, and the endpoints' error-reply behavior.
// Decoders here parse untrusted bytes, so the negative tests are the
// point: truncation at every byte boundary, bad magic/version/kind, and
// oversized declared counts must all fail loudly and allocation-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "client/url_mapper.hpp"
#include "proto/message.hpp"
#include "proto/transport.hpp"
#include "proto/wire.hpp"
#include "server/backend.hpp"
#include "server/endpoint.hpp"

namespace eyw::proto {
namespace {

const sketch::CmsParams kParams{.depth = 2, .width = 8};

std::vector<std::uint32_t> sample_cells() {
  std::vector<std::uint32_t> cells(kParams.cells());
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i] = static_cast<std::uint32_t>(0x1000 + i * 17);
  return cells;
}

/// Patch a little-endian u32 in place.
void patch_u32(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ProtoError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

TEST(Wire, ReaderRejectsOverruns) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  WireReader r(bytes);
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_THROW((void)r.u32(), ProtoError);
}

TEST(Wire, ReaderFlagsTrailingBytes) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  WireReader r(bytes);
  (void)r.u16();
  EXPECT_EQ(code_of([&] { r.expect_done(); }), ErrorCode::kTrailingBytes);
}

TEST(Envelope, HeaderRoundTrip) {
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const auto frame = encode_envelope(MsgKind::kAck, /*sender=*/42,
                                     /*round=*/7, payload);
  EXPECT_EQ(frame.size(), kEnvelopeHeaderBytes + payload.size());
  const Envelope env = decode_envelope(frame);
  EXPECT_EQ(env.kind, MsgKind::kAck);
  EXPECT_EQ(env.sender, 42u);
  EXPECT_EQ(env.round, 7u);
  EXPECT_EQ(env.payload, payload);
}

TEST(Envelope, TruncationAtEveryByteBoundary) {
  const proto::BlindedReport report{
      .participant = 3, .params = kParams, .cells = sample_cells()};
  const auto frame = report.encode(/*round=*/5);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(
        (void)decode_envelope(
            std::span<const std::uint8_t>(frame.data(), cut)),
        ProtoError)
        << "cut=" << cut;
  }
  EXPECT_NO_THROW((void)decode_envelope(frame));
}

TEST(Envelope, BadMagicVersionKindCodes) {
  auto frame = encode_ack();
  frame[0] ^= 0xff;
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kBadMagic);

  frame = encode_ack();
  frame[4] = 0x7f;
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kBadVersion);

  frame = encode_ack();
  frame[6] = 0x63;  // kind 99: not in the catalogue
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kUnknownKind);
}

TEST(Envelope, PeekKindMatchesDecodeWithoutThrowing) {
  const auto ack = encode_ack();
  EXPECT_EQ(peek_kind(ack), MsgKind::kAck);

  auto bad_magic = encode_ack();
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(peek_kind(bad_magic), std::nullopt);

  auto bad_version = encode_ack();
  bad_version[4] = 0x7f;
  EXPECT_EQ(peek_kind(bad_version), std::nullopt);

  auto unknown = encode_ack();
  unknown[6] = 0x63;
  EXPECT_EQ(peek_kind(unknown), std::nullopt);

  const std::vector<std::uint8_t> shorty{0x45, 0x59};
  EXPECT_EQ(peek_kind(shorty), std::nullopt);
}

TEST(Envelope, TrailingGarbageRejected) {
  auto frame = encode_ack();
  frame.push_back(0);
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kTrailingBytes);
}

TEST(Envelope, OversizedDeclaredPayloadRejectedBeforeAllocation) {
  // The length field claims 4 GB; the check must fire on the declared
  // value, not after trying to consume it.
  auto frame = encode_ack();
  patch_u32(frame, kEnvelopeHeaderBytes - 4, 0xffffffffu);
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kOversized);
}

TEST(Messages, RosterAnnounceRoundTrip) {
  RosterAnnounce roster;
  roster.element_bytes = 16;
  for (std::uint64_t k = 1; k <= 5; ++k)
    roster.public_keys.push_back(crypto::Bignum(0xabcd000 + k));
  const auto frame = roster.encode(/*round=*/3);
  const RosterAnnounce back = RosterAnnounce::decode(decode_envelope(frame));
  EXPECT_EQ(back.element_bytes, 16u);
  ASSERT_EQ(back.public_keys.size(), 5u);
  for (std::uint64_t k = 1; k <= 5; ++k)
    EXPECT_EQ(back.public_keys[k - 1], crypto::Bignum(0xabcd000 + k));
}

TEST(Messages, RosterOversizedCountRejected) {
  // Craft a payload declaring 2^21 keys backed by zero bytes of material:
  // the count cap must fire before any element reads.
  WireWriter w;
  w.u32(32);          // element_bytes
  w.u32(1u << 21);    // count, above kMaxRosterKeys
  const auto payload = w.take();
  const auto frame = encode_envelope(MsgKind::kRosterAnnounce, kServerSender,
                                     0, payload);
  EXPECT_EQ(code_of([&] {
              (void)RosterAnnounce::decode(decode_envelope(frame));
            }),
            ErrorCode::kOversized);
}

TEST(Messages, BlindedReportRoundTrip) {
  const BlindedReport report{
      .participant = 9, .params = kParams, .cells = sample_cells()};
  const auto frame = report.encode(/*round=*/11);
  const Envelope env = decode_envelope(frame);
  EXPECT_EQ(env.sender, 9u);
  EXPECT_EQ(env.round, 11u);
  const BlindedReport back = BlindedReport::decode(env);
  EXPECT_EQ(back.participant, 9u);
  EXPECT_EQ(back.params, kParams);
  EXPECT_EQ(back.cells, sample_cells());
}

TEST(Messages, ReportRoundMismatchBetweenLayersRejected) {
  // The embedded 'EYWS' frame carries its own round; an envelope whose
  // header disagrees is forged or corrupted.
  const BlindedReport report{
      .participant = 1, .params = kParams, .cells = sample_cells()};
  auto frame = report.encode(/*round=*/4);
  frame[12] = 5;  // envelope round low byte (magic+ver+kind+sender): 4 -> 5
  EXPECT_EQ(code_of([&] {
              (void)BlindedReport::decode(decode_envelope(frame));
            }),
            ErrorCode::kMalformed);
}

TEST(Messages, ReportSenderMustMatchPayloadParticipant) {
  // The envelope sender is what routing (incl. the sharded front door)
  // trusts; a payload claiming another participant is refused so the two
  // layers can never disagree about who reported.
  const BlindedReport report{
      .participant = 2, .params = kParams, .cells = sample_cells()};
  auto frame = report.encode(/*round=*/0);
  frame[8] = 3;  // envelope sender low byte: 2 -> 3, payload still says 2
  EXPECT_EQ(code_of([&] {
              (void)BlindedReport::decode(decode_envelope(frame));
            }),
            ErrorCode::kMalformed);
}

TEST(Messages, OversizedElementCountAgainstShortPayloadRejected) {
  // Declared element count far beyond the actual payload must fail before
  // any count-sized allocation (kTruncated, not a huge reserve).
  WireWriter w;
  w.u32(32);       // element_bytes
  w.u32(1u << 19); // count: under the cap, but backed by nothing
  const auto frame = encode_envelope(MsgKind::kRosterAnnounce, kServerSender,
                                     0, w.take());
  EXPECT_EQ(code_of([&] {
              (void)RosterAnnounce::decode(decode_envelope(frame));
            }),
            ErrorCode::kTruncated);
}

TEST(Messages, AdjustmentRequestRoundTrip) {
  AdjustmentRequest req;
  req.missing = {1, 4, 17};
  const AdjustmentRequest back =
      AdjustmentRequest::decode(decode_envelope(req.encode(/*round=*/2)));
  EXPECT_EQ(back.missing, (std::vector<std::uint32_t>{1, 4, 17}));
}

TEST(Messages, ThresholdBroadcastRoundTripIsBitExact) {
  const ThresholdBroadcast tb{
      .users_threshold = 7.125e-3, .reports = 90, .roster = 100};
  const ThresholdBroadcast back =
      ThresholdBroadcast::decode(decode_envelope(tb.encode(/*round=*/8)));
  EXPECT_EQ(back.users_threshold, 7.125e-3);  // bit_cast round trip: exact
  EXPECT_EQ(back.reports, 90u);
  EXPECT_EQ(back.roster, 100u);
}

TEST(Messages, OprfBatchRoundTrip) {
  OprfEvalRequest req;
  req.element_bytes = 8;
  req.elements = {crypto::Bignum(5), crypto::Bignum(0x1234567890ULL)};
  const OprfEvalRequest back =
      OprfEvalRequest::decode(decode_envelope(req.encode(/*sender=*/1)));
  EXPECT_EQ(back.element_bytes, 8u);
  ASSERT_EQ(back.elements.size(), 2u);
  EXPECT_EQ(back.elements[1], crypto::Bignum(0x1234567890ULL));

  OprfEvalResponse resp;
  resp.element_bytes = 8;
  resp.elements = {crypto::Bignum(17)};
  const OprfEvalResponse rback =
      OprfEvalResponse::decode(decode_envelope(resp.encode()));
  EXPECT_EQ(rback.elements[0], crypto::Bignum(17));
}

TEST(Messages, ShardedSubmitRoundTripAndLengthChecks) {
  const BlindedReport report{
      .participant = 6, .params = kParams, .cells = sample_cells()};
  ShardedSubmit sub;
  sub.shard = 2;
  sub.inner = report.encode(/*round=*/1);
  auto frame = sub.encode(/*sender=*/6, /*round=*/1);
  const ShardedSubmit back = ShardedSubmit::decode(decode_envelope(frame));
  EXPECT_EQ(back.shard, 2u);
  EXPECT_EQ(back.inner, sub.inner);
  // The doubly-nested frame still decodes.
  const BlindedReport inner =
      BlindedReport::decode(decode_envelope(back.inner));
  EXPECT_EQ(inner.participant, 6u);
}

TEST(Messages, ErrorReplyCarriesCodeThroughExpectReply) {
  const ErrorReply err{.code = ErrorCode::kGeometryMismatch,
                       .detail = "depth mismatch"};
  const auto frame = err.encode();
  const ErrorCode seen = code_of(
      [&] { (void)expect_reply(frame, MsgKind::kAck); });
  EXPECT_EQ(seen, ErrorCode::kGeometryMismatch);
}

TEST(Messages, ControlPlaneRoundTrips) {
  const BeginRound begin{.roster = 44};
  const Envelope benv = decode_envelope(begin.encode(/*round=*/9));
  EXPECT_EQ(benv.round, 9u);
  EXPECT_EQ(BeginRound::decode(benv).roster, 44u);

  MissingList list;
  list.missing = {2, 9, 31};
  EXPECT_EQ(MissingList::decode(decode_envelope(list.encode(1))).missing,
            (std::vector<std::uint32_t>{2, 9, 31}));

  RoundSummary summary;
  summary.users_threshold = 2.375;  // exactly representable: bit-exact trip
  summary.reports = 5;
  summary.roster = 6;
  summary.counts = {1.0, 2.0, 5.0};
  summary.sketch_frame = {0xAA, 0xBB, 0xCC};  // opaque at this layer
  const RoundSummary back =
      RoundSummary::decode(decode_envelope(summary.encode(3)));
  EXPECT_EQ(back.users_threshold, 2.375);
  EXPECT_EQ(back.reports, 5u);
  EXPECT_EQ(back.roster, 6u);
  EXPECT_EQ(back.counts, summary.counts);
  EXPECT_EQ(back.sketch_frame, summary.sketch_frame);

  const OprfKeyAnswer key{.element_bytes = 16,
                          .n = crypto::Bignum(0xDEADBEEFull),
                          .e = crypto::Bignum(65537)};
  const OprfKeyAnswer kback = OprfKeyAnswer::decode(decode_envelope(key.encode()));
  EXPECT_EQ(kback.n, crypto::Bignum(0xDEADBEEFull));
  EXPECT_EQ(kback.e, crypto::Bignum(65537));
}

TEST(Messages, BeginRoundRosterCapped) {
  // The declared roster drives per-participant allocations and the
  // missing-list scan: a 4-GB roster from a 28-byte frame must die in the
  // decoder, and an empty roster is meaningless.
  EXPECT_EQ(code_of([&] {
              (void)BeginRound::decode(
                  decode_envelope(BeginRound{.roster = 0xffffffffu}.encode(0)));
            }),
            ErrorCode::kOversized);
  EXPECT_EQ(code_of([&] {
              (void)BeginRound::decode(
                  decode_envelope(BeginRound{.roster = 0}.encode(0)));
            }),
            ErrorCode::kMalformed);
}

TEST(Messages, RoundSummaryOversizedDistributionRejected) {
  // A declared distribution count above the cap (or beyond the payload)
  // must fail before any count-sized allocation.
  WireWriter w;
  w.u64(0);           // users_th
  w.u32(0);           // reports
  w.u32(0);           // roster
  w.u32(1u << 23);    // count above kMaxSummaryCounts
  const auto over_cap = encode_envelope(MsgKind::kRoundSummary, kServerSender,
                                        0, w.take());
  EXPECT_EQ(code_of([&] {
              (void)RoundSummary::decode(decode_envelope(over_cap));
            }),
            ErrorCode::kOversized);

  WireWriter w2;
  w2.u64(0);
  w2.u32(0);
  w2.u32(0);
  w2.u32(1u << 20);   // under the cap, backed by nothing
  const auto unbacked = encode_envelope(MsgKind::kRoundSummary, kServerSender,
                                        0, w2.take());
  EXPECT_EQ(code_of([&] {
              (void)RoundSummary::decode(decode_envelope(unbacked));
            }),
            ErrorCode::kTruncated);
}

TEST(Transport, LoopbackCountsMessagesAndBytes) {
  LoopbackTransport t([](std::span<const std::uint8_t> frame) {
    EXPECT_FALSE(frame.empty());
    return encode_ack();
  });
  const auto frame = encode_ack();
  (void)t.exchange(frame);
  (void)t.exchange(frame);
  EXPECT_EQ(t.stats().messages_sent, 2u);
  EXPECT_EQ(t.stats().messages_received, 2u);
  EXPECT_EQ(t.stats().round_trips(), 2u);
  EXPECT_EQ(t.stats().bytes_sent, 2 * frame.size());
  EXPECT_EQ(t.stats().bytes_received, 2 * frame.size());
  EXPECT_EQ(t.stats().total_bytes(), 4 * frame.size());
}

server::BackendConfig small_backend_config() {
  return {.cms_params = kParams,
          .cms_hash_seed = 5,
          .id_space = 100,
          .users_rule = core::ThresholdRule::kMean};
}

TEST(Endpoint, ControlPlaneDisabledByDefaultEnabledByOptIn) {
  server::BackendServer backend(small_backend_config());
  {
    server::BackendEndpoint ingest_only(backend);
    EXPECT_EQ(code_of([&] {
                (void)expect_reply(
                    ingest_only.handle(BeginRound{.roster = 2}.encode(0)),
                    MsgKind::kAck);
              }),
              ErrorCode::kRejected);
  }
  {
    server::BackendEndpoint operator_ep(backend, /*serve_control=*/true);
    EXPECT_NO_THROW((void)expect_reply(
        operator_ep.handle(BeginRound{.roster = 2}.encode(0)),
        MsgKind::kAck));
    const auto reply = operator_ep.handle(encode_missing_query(0));
    const MissingList missing =
        MissingList::decode(expect_reply(reply, MsgKind::kMissingList));
    EXPECT_EQ(missing.missing, (std::vector<std::uint32_t>{0, 1}));
  }
}

TEST(Endpoint, BackendAcksValidReportAndRejectsProtocolViolations) {
  server::BackendServer backend(small_backend_config());
  server::BackendEndpoint endpoint(backend);
  backend.begin_round(0, 2);

  const BlindedReport report{
      .participant = 0, .params = kParams, .cells = sample_cells()};
  const auto frame = report.encode(0);
  const auto reply = endpoint.handle(frame);
  EXPECT_NO_THROW((void)expect_reply(reply, MsgKind::kAck));
  EXPECT_EQ(backend.reports_received(), 1u);

  // Duplicate submission: explicit kRejected, not a dead connection.
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(frame), MsgKind::kAck);
            }),
            ErrorCode::kRejected);

  // Wrong geometry: the report frame says 3x8, the round runs 2x8.
  const BlindedReport wrong{.participant = 1,
                            .params = {.depth = 3, .width = 8},
                            .cells = std::vector<std::uint32_t>(24, 1)};
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(wrong.encode(0)),
                                 MsgKind::kAck);
            }),
            ErrorCode::kGeometryMismatch);

  // A message the backend does not serve.
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(encode_ack()), MsgKind::kAck);
            }),
            ErrorCode::kUnknownKind);

  // Garbage never throws across the endpoint: it answers an Error frame.
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(garbage), MsgKind::kAck);
            }),
            ErrorCode::kBadMagic);
}

TEST(Endpoint, FaultInjectionExercisesDecoderErrorPaths) {
  server::BackendServer backend(small_backend_config());
  server::BackendEndpoint endpoint(backend);
  backend.begin_round(0, 3);
  LoopbackTransport net([&](std::span<const std::uint8_t> frame) {
    return endpoint.handle(frame);
  });

  const BlindedReport report{
      .participant = 0, .params = kParams, .cells = sample_cells()};
  const auto frame = report.encode(0);

  {
    // Truncate the first exchange mid-payload: server answers kTruncated.
    FaultInjectingTransport faulty(
        net, {.action = FaultPlan::Action::kTruncateRequest,
              .nth = 0,
              .offset = frame.size() - 3});
    EXPECT_EQ(code_of([&] {
                (void)expect_reply(faulty.exchange(frame), MsgKind::kAck);
              }),
              ErrorCode::kTruncated);
    EXPECT_EQ(backend.reports_received(), 0u);
  }
  {
    // Corrupt the magic: server answers kBadMagic.
    FaultInjectingTransport faulty(
        net, {.action = FaultPlan::Action::kCorruptRequest,
              .nth = 0,
              .offset = 0});
    EXPECT_EQ(code_of([&] {
                (void)expect_reply(faulty.exchange(frame), MsgKind::kAck);
              }),
              ErrorCode::kBadMagic);
  }
  {
    // Drop the response: the client sees an empty frame and its own
    // decoder reports the loss.
    FaultInjectingTransport faulty(
        net,
        {.action = FaultPlan::Action::kDropResponse, .nth = 0});
    const auto reply = faulty.exchange(frame);
    EXPECT_TRUE(reply.empty());
    EXPECT_THROW((void)expect_reply(reply, MsgKind::kAck), ProtoError);
    // The request itself went through before the response was lost.
    EXPECT_EQ(backend.reports_received(), 1u);
    EXPECT_EQ(faulty.exchanges(), 1u);
  }
  {
    // Later exchanges pass untouched.
    FaultInjectingTransport faulty(
        net,
        {.action = FaultPlan::Action::kCorruptRequest, .nth = 5, .offset = 0});
    const BlindedReport second{
        .participant = 1, .params = kParams, .cells = sample_cells()};
    EXPECT_NO_THROW(
        (void)expect_reply(faulty.exchange(second.encode(0)), MsgKind::kAck));
    EXPECT_EQ(backend.reports_received(), 2u);
  }
}

TEST(Endpoint, OprfServesBatchesAndValidatesElements) {
  util::Rng rng(1234);
  const crypto::OprfServer server(rng, 256);
  server::OprfEndpoint endpoint(server);
  const crypto::RsaPublicKey& pub = server.public_key();

  OprfEvalRequest req;
  req.element_bytes = static_cast<std::uint32_t>(pub.modulus_bytes());
  req.elements = {crypto::Bignum(12345), crypto::Bignum(99)};
  const auto reply = endpoint.handle(req.encode(0));
  const OprfEvalResponse resp = OprfEvalResponse::decode(
      expect_reply(reply, MsgKind::kOprfEvalResponse));
  ASSERT_EQ(resp.elements.size(), 2u);
  EXPECT_EQ(resp.elements[0], server.evaluate_blinded(crypto::Bignum(12345)));
  EXPECT_EQ(resp.elements[1], server.evaluate_blinded(crypto::Bignum(99)));

  // Element outside Z_N: refused, not exponentiated.
  OprfEvalRequest bad = req;
  bad.elements = {pub.n};
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(bad.encode(0)),
                                 MsgKind::kOprfEvalResponse);
            }),
            ErrorCode::kMalformed);

  // Element size disagreeing with the server's modulus: geometry error.
  OprfEvalRequest wrong_size;
  wrong_size.element_bytes = 8;
  wrong_size.elements = {crypto::Bignum(5)};
  EXPECT_EQ(code_of([&] {
              (void)expect_reply(endpoint.handle(wrong_size.encode(0)),
                                 MsgKind::kOprfEvalResponse);
            }),
            ErrorCode::kGeometryMismatch);
}

}  // namespace
}  // namespace eyw::proto
