// The ingest buffer pool: recycle accounting, the capacity floor and
// prewarm that make steady-state misses deterministic, reclaim of buffers
// still held by a dying connection's assembler, and pool reuse across
// connection churn against a live FrameServer (under ASan this doubles as
// the use-after-recycle check — a frame must never be touched after its
// buffer went back to the pool).
#include "proto/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <span>
#include <vector>

#include "proto/frame_assembler.hpp"
#include "proto/message.hpp"
#include "proto/tcp.hpp"

namespace eyw::proto {
namespace {

TEST(BufferPool, PrewarmedAcquireIsAHit) {
  BufferPool pool({.min_buffer_bytes = 1024, .prewarm_buffers = 4});
  EXPECT_EQ(pool.idle(), 4u);
  const auto buf = pool.acquire(512);  // under the floor: prewarm covers it
  EXPECT_EQ(buf.size(), 512u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(pool.idle(), 3u);
}

TEST(BufferPool, EmptyPoolAllocatesAtTheCapacityFloor) {
  BufferPool pool({.min_buffer_bytes = 4096, .prewarm_buffers = 0});
  auto buf = pool.acquire(16);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_GE(buf.capacity(), 4096u);  // floored, not sized-to-request
  pool.release(std::move(buf));
  // The floored buffer now serves any working-size frame without another
  // allocation — the property that kills the slow miss trickle.
  const auto big = pool.acquire(4096);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, UndersizedRecycledBufferCountsOneMissThenUpgrades) {
  BufferPool pool({.min_buffer_bytes = 64, .prewarm_buffers = 0});
  auto small = pool.acquire(8);
  pool.release(std::move(small));
  auto grown = pool.acquire(1024);  // above the recycled capacity
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_GE(grown.capacity(), 1024u);
  pool.release(std::move(grown));
  (void)pool.acquire(1024);
  EXPECT_EQ(pool.hits(), 1u);  // upgraded once, hits forever after
}

TEST(BufferPool, DropsDegenerateAndGiantBuffers) {
  BufferPool pool({.max_retained_bytes = 256, .prewarm_buffers = 0});
  pool.release(std::vector<std::uint8_t>{});  // no backing allocation
  EXPECT_EQ(pool.idle(), 0u);
  std::vector<std::uint8_t> giant(1024);
  pool.release(std::move(giant));  // above the retention cap
  EXPECT_EQ(pool.idle(), 0u);
  std::vector<std::uint8_t> keeper(128);
  pool.release(std::move(keeper));
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(BufferPool, FreeListBoundedByMaxBuffers) {
  BufferPool pool({.max_buffers = 2, .prewarm_buffers = 0});
  for (int i = 0; i < 5; ++i) pool.release(std::vector<std::uint8_t>(16));
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(FrameAssemblerPool, DyingAssemblerReturnsHeldBuffersToThePool) {
  BufferPool pool({.min_buffer_bytes = 256, .prewarm_buffers = 2});
  {
    FrameAssembler assembler(1024, &pool);
    // One complete frame left unpopped, one mid-assembly body.
    const std::uint8_t complete[8] = {4, 0, 0, 0, 'a', 'b', 'c', 'd'};
    ASSERT_TRUE(assembler.feed(complete));
    const std::uint8_t partial[6] = {8, 0, 0, 0, 'x', 'y'};
    ASSERT_TRUE(assembler.feed(partial));
    EXPECT_EQ(assembler.frames_ready(), 1u);
    EXPECT_TRUE(assembler.mid_frame());
    EXPECT_EQ(pool.idle(), 0u);  // both buffers are out with the assembler
  }
  // A connection closed mid-exchange must not bleed buffers out of the
  // recycle loop: both come back on destruction.
  EXPECT_EQ(pool.idle(), 2u);
}

/// Blocking loopback connect to a test server.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_framed(int fd) {
  std::uint8_t prefix[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::recv(fd, prefix + got, 4 - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return {};
    got += static_cast<std::size_t>(n);
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  std::vector<std::uint8_t> frame(len);
  got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, frame.data() + got, len - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return {};
    got += static_cast<std::size_t>(n);
  }
  return frame;
}

TEST(FrameServerPool, ChurningConnectionsRecycleInsteadOfAllocating) {
  FrameServer server(
      [](std::span<const std::uint8_t>) { return encode_ack(); });
  // A frame comfortably under the pool's default capacity floor, sized
  // like a small report rather than a control ping.
  const std::vector<std::uint8_t> payload(2048, 0x5a);
  const std::vector<std::uint8_t> frame =
      encode_envelope(MsgKind::kBlindedReport, 3, 1, payload);

  constexpr int kConnections = 40;
  for (int i = 0; i < kConnections; ++i) {
    const int fd = connect_to(server.port());
    std::vector<std::uint8_t> framed(4);
    const auto len = static_cast<std::uint32_t>(frame.size());
    for (int b = 0; b < 4; ++b)
      framed[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(len >> (8 * b));
    framed.insert(framed.end(), frame.begin(), frame.end());
    send_all(fd, framed);
    EXPECT_FALSE(read_framed(fd).empty());
    // Every third connection dies mid-frame: prefix plus half a body,
    // then an abrupt close. The buffer the assembler already acquired
    // must come back to the pool with the connection (and must never be
    // touched again — ASan's half of this test).
    if (i % 3 == 0) {
      send_all(fd, std::span<const std::uint8_t>(framed.data(),
                                                 framed.size() / 2));
    }
    ::close(fd);
  }
  for (int i = 0; i < 2'000 && server.active_connections() != 0; ++i)
    ::usleep(1'000);
  ASSERT_EQ(server.active_connections(), 0u);

  const FrameServerStats stats = server.stats();
  // One pooled acquire per completed request plus one per abandoned
  // partial (the declared length allocates the body before the bytes
  // arrive); churn cost zero allocations — the default prewarm covers
  // this concurrency, so misses stay 0, which is exactly the determinism
  // the soak scenario's flat assertion needs.
  const std::uint64_t partials = (kConnections + 2) / 3;  // i % 3 == 0
  EXPECT_EQ(stats.reactor.frames_pooled,
            static_cast<std::uint64_t>(kConnections) + partials);
  EXPECT_EQ(stats.reactor.pool_misses, 0u);
  EXPECT_EQ(stats.reactor.bytes_copied_ingest, 0u);
}

}  // namespace
}  // namespace eyw::proto
