// The reactor transport's own invariants: incremental frame assembly at
// every chunking, hundreds of concurrent connections multiplexed onto a
// fixed thread budget (resident threads = shards + acceptor, never
// O(connections)), slow-loris isolation (a stalled half-frame is dropped
// at the deadline without slowing anyone else), admission control
// (Error(kUnavailable) past max_connections), and pipelined requests
// answered in order.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "proto/frame_assembler.hpp"
#include "proto/message.hpp"
#include "proto/raw_frame_io.hpp"
#include "proto/tcp.hpp"

namespace eyw::proto {
namespace {

using raw::connect_loopback;
using raw::process_threads;
using raw::read_framed;
using raw::with_prefix;

// ------------------------------------------------------------ assembler

TEST(FrameAssembler, ReassemblesAtEveryChunkSize) {
  // Three frames (one of them empty) in one byte stream, fed in chunks of
  // every size from 1 byte up: the emitted frames must be identical
  // regardless of where recv() happened to split the stream.
  const std::vector<std::uint8_t> f1{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> f2{};
  const std::vector<std::uint8_t> f3(300, 0xab);
  std::vector<std::uint8_t> stream;
  for (const auto* f : {&f1, &f2, &f3}) {
    const auto framed = with_prefix(*f);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameAssembler asmbl(kMaxTcpFrameBytes);
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      ASSERT_TRUE(asmbl.feed(
          std::span<const std::uint8_t>(stream.data() + off, n)));
    }
    ASSERT_EQ(asmbl.frames_ready(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(*asmbl.next(), f1) << "chunk=" << chunk;
    EXPECT_EQ(*asmbl.next(), f2) << "chunk=" << chunk;
    EXPECT_EQ(*asmbl.next(), f3) << "chunk=" << chunk;
    EXPECT_FALSE(asmbl.next().has_value());
    EXPECT_FALSE(asmbl.mid_frame());
    EXPECT_EQ(asmbl.frames_completed(), 3u);
  }
}

TEST(FrameAssembler, MidFrameTracksPartialPrefixAndBody) {
  FrameAssembler asmbl(kMaxTcpFrameBytes);
  EXPECT_FALSE(asmbl.mid_frame());
  const std::uint8_t half_prefix[2] = {5, 0};
  ASSERT_TRUE(asmbl.feed(half_prefix));
  EXPECT_TRUE(asmbl.mid_frame());  // partial prefix counts as started
  const std::uint8_t rest_prefix[2] = {0, 0};
  ASSERT_TRUE(asmbl.feed(rest_prefix));
  EXPECT_TRUE(asmbl.mid_frame());  // body of 5 declared, none arrived
  const std::uint8_t body[5] = {9, 9, 9, 9, 9};
  ASSERT_TRUE(asmbl.feed(std::span<const std::uint8_t>(body, 3)));
  EXPECT_TRUE(asmbl.mid_frame());
  ASSERT_TRUE(asmbl.feed(std::span<const std::uint8_t>(body + 3, 2)));
  EXPECT_FALSE(asmbl.mid_frame());
  EXPECT_EQ(asmbl.frames_ready(), 1u);
}

TEST(FrameAssembler, OversizedDeclaredLengthRefusedBeforeBody) {
  // Cap of 64: a prefix declaring 65 kills the stream — feed() refuses,
  // oversized() latches, and frames completed *before* the bad prefix
  // stay poppable.
  FrameAssembler asmbl(/*max_frame_bytes=*/64);
  const std::vector<std::uint8_t> good{1, 2, 3};
  auto stream = with_prefix(good);
  const std::uint8_t bad_prefix[4] = {65, 0, 0, 0};
  stream.insert(stream.end(), bad_prefix, bad_prefix + 4);

  EXPECT_FALSE(asmbl.feed(stream));
  EXPECT_TRUE(asmbl.oversized());
  EXPECT_EQ(*asmbl.next(), good);
  EXPECT_FALSE(asmbl.next().has_value());
  // Dead stream refuses all further input.
  const std::uint8_t more[1] = {0};
  EXPECT_FALSE(asmbl.feed(more));
  EXPECT_EQ(asmbl.frames_completed(), 1u);
}

TEST(FrameAssembler, FourGigabyteDeclarationDoesNotAllocate) {
  // The classic attack frame: 4 bytes declaring ~4 GiB. The assembler
  // must refuse on the declared value alone (allocating would OOM or trip
  // ASan allocator limits long before a 4-byte stream justifies it).
  FrameAssembler asmbl(kMaxTcpFrameBytes);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(asmbl.feed(huge));
  EXPECT_TRUE(asmbl.oversized());
  EXPECT_EQ(asmbl.frames_ready(), 0u);
}

// ------------------------------------------------------- multiplexing

void send_raw(int fd, std::span<const std::uint8_t> bytes) {
  ASSERT_TRUE(raw::send_all(fd, bytes));
}

void wait_idle(const FrameServer& server) {
  for (int i = 0; i < 5'000 && server.active_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(Reactor, Serves256ConcurrentReportersOnOneShardSet) {
  constexpr std::size_t kConns = 256;
  constexpr int kRounds = 3;

  const std::size_t threads_before = process_threads();
  FrameServer server(
      [](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);  // must be a valid envelope
        return encode_ack();
      },
      {.backlog = 256, .reactor_shards = 1, .max_connections = 512});
  const std::size_t server_threads = process_threads() - threads_before;
  // The whole point of the reactor: thread budget is shards + acceptor,
  // independent of how many connections arrive below.
  EXPECT_EQ(server_threads, server.shards() + 1);

  std::vector<int> fds;
  fds.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    const int fd = connect_loopback(server.port());
    ASSERT_GE(fd, 0) << "connection " << i;
    fds.push_back(fd);
  }

  const auto request = encode_oprf_key_query();  // small valid envelope
  const auto framed = with_prefix(request);
  const auto ack = encode_ack();
  for (int round = 0; round < kRounds; ++round) {
    // All 256 sockets hold an outstanding request at once — the server
    // must interleave them on its single shard thread.
    for (const int fd : fds) send_raw(fd, framed);
    for (const int fd : fds) {
      const auto reply = read_framed(fd);
      ASSERT_EQ(reply, ack);
    }
    // Still O(shards) threads with every connection established.
    EXPECT_EQ(process_threads() - threads_before, server.shards() + 1)
        << "round " << round;
  }

  EXPECT_EQ(server.connections_accepted(), kConns);
  EXPECT_EQ(server.active_connections(), kConns);
  for (const int fd : fds) ::close(fd);
  wait_idle(server);

  const FrameServerStats stats = server.stats();
  EXPECT_EQ(stats.messages_received, kConns * kRounds);
  EXPECT_EQ(stats.messages_sent, kConns * kRounds);
  EXPECT_EQ(stats.bytes_received, kConns * kRounds * request.size());
  EXPECT_EQ(stats.bytes_sent, kConns * kRounds * ack.size());
  // Reactor counters: every connection accounted for, none refused or
  // deadline-dropped under this healthy load, and the accept handovers
  // visible as cross-thread eventfd wakeups (fewer than kConns is normal:
  // posts landing while the loop is busy coalesce into one wakeup).
  EXPECT_EQ(stats.reactor.connections_accepted, kConns);
  EXPECT_EQ(stats.reactor.connections_refused, 0u);
  EXPECT_EQ(stats.reactor.deadline_drops, 0u);
  EXPECT_GT(stats.reactor.eventfd_wakeups, 0u);
}

TEST(Reactor, SlowLorisDroppedAtDeadlineWithoutStallingOthers) {
  FrameServer server(
      [](std::span<const std::uint8_t>) { return encode_ack(); },
      {.reactor_shards = 1,
       .io_timeout = std::chrono::milliseconds(200)});

  // The loris: opens a frame (half a prefix) and stalls forever.
  const int loris = connect_loopback(server.port());
  ASSERT_GE(loris, 0);
  const std::uint8_t half[2] = {0x10, 0x00};
  send_raw(loris, half);

  // A healthy client on the same (only) shard keeps exchanging the whole
  // time the loris is holding its half-frame; every round trip must stay
  // far below the loris deadline — the reactor never blocks on the
  // stalled socket.
  const int healthy = connect_loopback(server.port());
  ASSERT_GE(healthy, 0);
  const auto framed = with_prefix(encode_oprf_key_query());
  const auto start = std::chrono::steady_clock::now();
  int exchanges = 0;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(400)) {
    const auto t0 = std::chrono::steady_clock::now();
    send_raw(healthy, framed);
    ASSERT_FALSE(read_framed(healthy).empty());
    const auto rtt = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(rtt, std::chrono::milliseconds(100))
        << "exchange " << exchanges << " stalled behind the loris";
    ++exchanges;
  }
  EXPECT_GT(exchanges, 3);

  // The loris was dropped at its deadline (EOF), the healthy connection
  // survives — and the drop is visible in the reactor counters.
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(loris, &byte, 1, 0), 0);
  send_raw(healthy, framed);
  EXPECT_FALSE(read_framed(healthy).empty());
  EXPECT_EQ(server.stats().reactor.deadline_drops, 1u);
  ::close(loris);
  ::close(healthy);
  wait_idle(server);
}

TEST(Reactor, ConnectionsPastCapRefusedWithUnavailable) {
  FrameServer server(
      [](std::span<const std::uint8_t>) { return encode_ack(); },
      {.reactor_shards = 1, .max_connections = 2});

  // Fill the two slots and prove they are live (an exchange each, so the
  // acceptor has definitely admitted them).
  const int a = connect_loopback(server.port());
  const int b = connect_loopback(server.port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const auto framed = with_prefix(encode_oprf_key_query());
  for (const int fd : {a, b}) {
    send_raw(fd, framed);
    ASSERT_FALSE(read_framed(fd).empty());
  }

  // The third connection is answered Error(kUnavailable) and closed —
  // an explicit machine-readable refusal, not a silent stall.
  const int c = connect_loopback(server.port());
  ASSERT_GE(c, 0);
  const auto reply = read_framed(c);
  ASSERT_FALSE(reply.empty());
  try {
    (void)expect_reply(reply, MsgKind::kAck);
    FAIL() << "over-cap connection was served";
  } catch (const ProtoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(c, &byte, 1, 0), 0);  // closed after the refusal
  ::close(c);
  EXPECT_EQ(server.connections_refused(), 1u);

  // Freeing a slot re-opens admission.
  ::close(a);
  for (int i = 0; i < 2'000 && server.active_connections() != 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const int d = connect_loopback(server.port());
  ASSERT_GE(d, 0);
  send_raw(d, framed);
  EXPECT_FALSE(read_framed(d).empty());
  ::close(b);
  ::close(d);
  wait_idle(server);
}

TEST(Reactor, PipelinedRequestsAnsweredInOrder) {
  // The incremental assembler lets a client ship several frames in one
  // write; replies must come back complete and in request order.
  std::atomic<int> counter{0};
  FrameServer server(
      [&](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);
        return ErrorReply{.code = ErrorCode::kOk,
                          .detail = std::to_string(
                              counter.fetch_add(1, std::memory_order_relaxed))}
            .encode();
      },
      {.reactor_shards = 1});

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> batch;
  constexpr int kPipelined = 8;
  for (int i = 0; i < kPipelined; ++i) {
    const auto framed = with_prefix(encode_oprf_key_query());
    batch.insert(batch.end(), framed.begin(), framed.end());
  }
  send_raw(fd, batch);
  for (int i = 0; i < kPipelined; ++i) {
    const auto reply = read_framed(fd);
    ASSERT_FALSE(reply.empty()) << "reply " << i;
    const ErrorReply decoded = ErrorReply::decode(decode_envelope(reply));
    EXPECT_EQ(decoded.detail, std::to_string(i)) << "out-of-order reply";
  }
  ::close(fd);
  wait_idle(server);
}

}  // namespace
}  // namespace eyw::proto
