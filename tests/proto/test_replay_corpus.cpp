// Replayed-frame corpus: a byte-identical resubmission of every envelope
// kind the endpoint ACCEPTS into round state must be refused with
// kRejected and counted on refused_replay — replay is not "idempotent
// success", it is an attack (doubling a report's weight, re-opening a
// round to wipe its submissions). Read-only control queries are the
// deliberate exception: replaying a query is just asking again.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "proto/message.hpp"
#include "server/cluster.hpp"
#include "server/endpoint.hpp"

namespace eyw {
namespace {

constexpr std::uint64_t kRound = 7;
constexpr std::uint32_t kRoster = 4;

server::BackendConfig small_config() {
  return {.cms_params = {.depth = 2, .width = 32},
          .cms_hash_seed = 5,
          .id_space = 64,
          .users_rule = core::ThresholdRule::kMean};
}

std::vector<crypto::BlindCell> cells_for(const server::BackendConfig& config,
                                         std::uint32_t i) {
  std::vector<crypto::BlindCell> cells(config.cms_params.cells());
  for (std::size_t c = 0; c < cells.size(); ++c)
    cells[c] = i * 97 + static_cast<crypto::BlindCell>(c);
  return cells;
}

proto::MsgKind kind_of(const std::vector<std::uint8_t>& reply) {
  return proto::decode_envelope(reply).kind;
}

proto::ErrorCode code_of(const std::vector<std::uint8_t>& reply) {
  const proto::Envelope env = proto::decode_envelope(reply);
  return env.kind == proto::MsgKind::kError
             ? proto::ErrorReply::decode(env).code
             : proto::ErrorCode::kOk;
}

class ReplayCorpusTest : public ::testing::Test {
 protected:
  ReplayCorpusTest()
      : config_(small_config()),
        cluster_(config_, 2),
        endpoint_(cluster_, /*serve_control=*/true) {}

  /// Replay `frame` byte-identically and assert the full refusal
  /// contract: kRejected on the wire, refusals / refused_by_code /
  /// refused_replay each moved by exactly one, accepted counters frozen.
  void expect_replay_refused(const std::vector<std::uint8_t>& frame,
                             const char* what) {
    const server::EndpointCounters& c = endpoint_.counters();
    const std::uint64_t refusals = c.refusals.load();
    const std::uint64_t replays = c.refused_replay.load();
    const std::uint64_t rejected =
        c.refused_by_code[static_cast<std::size_t>(proto::ErrorCode::kRejected)]
            .load();
    const std::uint64_t reports = c.reports_accepted.load();
    const std::uint64_t adjustments = c.adjustments_accepted.load();

    EXPECT_EQ(code_of(endpoint_.handle(frame)), proto::ErrorCode::kRejected)
        << what;
    EXPECT_EQ(c.refusals.load(), refusals + 1) << what;
    EXPECT_EQ(c.refused_replay.load(), replays + 1) << what;
    EXPECT_EQ(
        c.refused_by_code[static_cast<std::size_t>(proto::ErrorCode::kRejected)]
            .load(),
        rejected + 1)
        << what;
    EXPECT_EQ(c.reports_accepted.load(), reports) << what;
    EXPECT_EQ(c.adjustments_accepted.load(), adjustments) << what;
  }

  server::BackendConfig config_;
  server::BackendCluster cluster_;
  server::BackendEndpoint endpoint_;
};

TEST_F(ReplayCorpusTest, EveryAcceptedKindRefusesByteIdenticalResubmission) {
  // ---- first submissions: every accepted kind, accepted once ----------
  const auto begin = proto::BeginRound{.roster = kRoster}.encode(kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(begin)), proto::MsgKind::kAck);

  const auto report0 = proto::BlindedReport{.participant = 0,
                                            .params = config_.cms_params,
                                            .cells = cells_for(config_, 0)}
                           .encode(kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(report0)), proto::MsgKind::kAck);

  // Participant 1 reports through the ShardedSubmit wrapper (the cluster
  // ingestion path), with the shard id the routing function assigns.
  const auto inner = proto::BlindedReport{.participant = 1,
                                          .params = config_.cms_params,
                                          .cells = cells_for(config_, 1)}
                         .encode(kRound);
  const auto sharded =
      proto::ShardedSubmit{
          .shard = static_cast<std::uint32_t>(cluster_.shard_for(1)),
          .inner = inner}
          .encode(/*sender=*/1, kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(sharded)), proto::MsgKind::kAck);

  // Reporters 0 and 1 adjust for the missing {2, 3}.
  const auto adjustment0 =
      proto::Adjustment{.participant = 0,
                        .params = config_.cms_params,
                        .cells = std::vector<crypto::BlindCell>(
                            config_.cms_params.cells(), 1)}
          .encode(kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(adjustment0)), proto::MsgKind::kAck);

  ASSERT_EQ(endpoint_.counters().reports_accepted.load(), 2u);
  ASSERT_EQ(endpoint_.counters().adjustments_accepted.load(), 1u);

  // ---- the corpus: byte-identical replays, one per accepted kind ------
  expect_replay_refused(begin, "BeginRound replay");
  expect_replay_refused(report0, "BlindedReport replay");
  expect_replay_refused(sharded, "ShardedSubmit replay");
  expect_replay_refused(adjustment0, "Adjustment replay");

  // ---- read-only control queries are idempotent, not replays ----------
  const auto missing_query = proto::encode_envelope(
      proto::MsgKind::kMissingQuery, proto::kServerSender, kRound, {});
  const std::uint64_t refusals = endpoint_.counters().refusals.load();
  const auto first = endpoint_.handle(missing_query);
  const auto second = endpoint_.handle(missing_query);
  EXPECT_EQ(kind_of(first), proto::MsgKind::kMissingList);
  EXPECT_EQ(first, second);  // same answer, byte for byte
  EXPECT_EQ(endpoint_.counters().refusals.load(), refusals);
}

TEST_F(ReplayCorpusTest, MuxTransitCannotLaunderAReplay) {
  // PR 9 frames travel wrapped as version-2 stream envelopes and are
  // unwrapped at the connection layer before dispatch. The unwrap must
  // reproduce the version-1 bytes exactly — otherwise a replayed report
  // arriving via a mux connection would hash differently and slip past
  // byte-identical replay detection. Corpus entry: the same report, once
  // direct and once through an add_stream/strip_stream transit.
  ASSERT_EQ(kind_of(endpoint_.handle(
                proto::BeginRound{.roster = kRoster}.encode(kRound))),
            proto::MsgKind::kAck);
  const auto report = proto::BlindedReport{.participant = 3,
                                           .params = config_.cms_params,
                                           .cells = cells_for(config_, 3)}
                          .encode(kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(report)), proto::MsgKind::kAck);

  const auto transited =
      proto::strip_stream(proto::add_stream(report, /*stream=*/12)).frame;
  ASSERT_EQ(transited, report);
  expect_replay_refused(transited, "mux-transited replay");
}

TEST_F(ReplayCorpusTest, HelloIsNotReplayProtected) {
  // Capability negotiation is per connection and carries no round state:
  // replaying a Hello (e.g. a client reconnecting) is not an attack, so
  // the endpoint answers it the same way every time. The endpoint itself
  // never normally sees Hello — FrameServer answers it at the connection
  // layer — but a defense-in-depth decode must not crash or double-count.
  const auto hello = proto::Hello{.capabilities = proto::kCapMux}.encode(0);
  const auto first = endpoint_.handle(hello);
  const auto second = endpoint_.handle(hello);
  EXPECT_EQ(first, second);
  EXPECT_EQ(endpoint_.counters().refused_replay.load(), 0u);
}

TEST_F(ReplayCorpusTest, ReplayRefusalLeavesFirstSubmissionStanding) {
  ASSERT_EQ(kind_of(endpoint_.handle(
                proto::BeginRound{.roster = kRoster}.encode(kRound))),
            proto::MsgKind::kAck);
  const auto report = proto::BlindedReport{.participant = 2,
                                           .params = config_.cms_params,
                                           .cells = cells_for(config_, 2)}
                          .encode(kRound);
  ASSERT_EQ(kind_of(endpoint_.handle(report)), proto::MsgKind::kAck);
  expect_replay_refused(report, "duplicate report");

  // The missing list still shows everyone but participant 2: the refusal
  // neither dropped the original report nor admitted the copy.
  const auto reply = endpoint_.handle(proto::encode_envelope(
      proto::MsgKind::kMissingQuery, proto::kServerSender, kRound, {}));
  auto list = proto::MissingList::decode(proto::decode_envelope(reply));
  std::sort(list.missing.begin(), list.missing.end());
  EXPECT_EQ(list.missing, (std::vector<std::uint32_t>{0, 1, 3}));
}

}  // namespace
}  // namespace eyw
