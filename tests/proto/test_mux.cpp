// PR 9's multiplexing layer, bottom to top: the version-2 stream
// envelope (add/strip round trips, truncation at every byte boundary,
// negative decodes), Hello capability negotiation, the retry-after hint
// on ErrorReply, dispatcher-lane overload shedding, and the end-to-end
// contract — many logical streams on one socket with per-stream FIFO
// correlation, sibling-stream independence under a stalled handler,
// deterministic sheds at the stream-id cap and the per-stream backlog
// bound, transparent client retry of hinted sheds, graceful degradation
// against a pre-Hello peer, and a mux swarm finishing a round
// bit-identical to the same submissions applied in-process.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "proto/client_reactor.hpp"
#include "proto/message.hpp"
#include "proto/raw_frame_io.hpp"
#include "proto/tcp.hpp"
#include "proto/wire.hpp"
#include "server/cluster.hpp"
#include "server/dispatcher.hpp"
#include "server/endpoint.hpp"
#include "server/remote_backend.hpp"

namespace eyw::proto {
namespace {

const sketch::CmsParams kParams{.depth = 2, .width = 8};

std::vector<std::uint32_t> sample_cells() {
  std::vector<std::uint32_t> cells(kParams.cells());
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i] = static_cast<std::uint32_t>(0x2000 + i * 13);
  return cells;
}

std::vector<std::uint8_t> sample_v1_frame() {
  return BlindedReport{
      .participant = 3, .params = kParams, .cells = sample_cells()}
      .encode(/*round=*/5);
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ProtoError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

/// Collects one exchange outcome and lets a test thread wait for it.
struct Caught {
  std::mutex mu;
  std::condition_variable cv;
  AsyncResult result;
  bool done = false;

  AsyncCompletionFn sink() {
    return [this](AsyncResult r) {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
      cv.notify_one();
    };
  }

  AsyncResult wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

// --------------------------------------------------- the stream envelope

TEST(MuxEnvelope, AddStripRoundTripIsByteIdentical) {
  const auto v1 = sample_v1_frame();
  EXPECT_EQ(peek_stream(v1), 0u);  // legacy frames ride the zero lane

  const auto v2 = add_stream(v1, /*stream=*/7);
  ASSERT_EQ(v2.size(), v1.size() + 4);
  EXPECT_EQ(v2[4], 2);  // version byte patched
  EXPECT_EQ(peek_stream(v2), 7u);
  // Every field an old decoder peeks before the version check sits at the
  // same offset in both versions.
  EXPECT_EQ(peek_kind(v2), peek_kind(v1));
  EXPECT_EQ(peek_sender(v2), peek_sender(v1));

  const Envelope env = decode_envelope(v2);
  EXPECT_EQ(env.stream, 7u);
  EXPECT_EQ(env.kind, MsgKind::kBlindedReport);
  EXPECT_EQ(env.round, 5u);
  EXPECT_EQ(env.payload, decode_envelope(v1).payload);

  const StrippedFrame stripped = strip_stream(v2);
  EXPECT_EQ(stripped.stream, 7u);
  EXPECT_EQ(stripped.frame, v1) << "round trip must be byte-identical";

  // A version-1 input passes strip_stream through unchanged.
  const StrippedFrame pass = strip_stream(v1);
  EXPECT_EQ(pass.stream, 0u);
  EXPECT_EQ(pass.frame, v1);
}

TEST(MuxEnvelope, TruncationAtEveryByteBoundary) {
  const auto v2 = add_stream(sample_v1_frame(), /*stream=*/9);
  for (std::size_t cut = 0; cut < v2.size(); ++cut) {
    const std::span<const std::uint8_t> clipped(v2.data(), cut);
    EXPECT_THROW((void)decode_envelope(clipped), ProtoError) << "cut=" << cut;
    if (cut < kMuxEnvelopeHeaderBytes) {
      // strip_stream needs the full 28-byte header.
      EXPECT_THROW((void)strip_stream(clipped), ProtoError)
          << "strip cut=" << cut;
    } else {
      // Past the header, strip_stream is a pure byte transform (the
      // connection layer only ever feeds it complete frames); the length
      // mismatch must still die loudly in the downstream decode.
      EXPECT_THROW((void)decode_envelope(strip_stream(clipped).frame),
                   ProtoError)
          << "stripped cut=" << cut;
    }
  }
  EXPECT_NO_THROW((void)decode_envelope(v2));
}

TEST(MuxEnvelope, NegativeDecodes) {
  // Version 3 does not exist — 2 is the highest the catalogue speaks.
  auto frame = sample_v1_frame();
  frame[4] = 3;
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kBadVersion);
  EXPECT_EQ(code_of([&] { (void)strip_stream(frame); }),
            ErrorCode::kBadVersion);
  EXPECT_EQ(peek_stream(frame), std::nullopt);

  // A version byte patched to 2 without the stream id inserted: the
  // 4 bytes the longer header claims are missing from the tail.
  frame = sample_v1_frame();
  frame[4] = 2;
  EXPECT_EQ(code_of([&] { (void)decode_envelope(frame); }),
            ErrorCode::kTruncated);

  // Trailing garbage after a valid version-2 frame.
  auto v2 = add_stream(sample_v1_frame(), /*stream=*/1);
  v2.push_back(0xee);
  EXPECT_EQ(code_of([&] { (void)decode_envelope(v2); }),
            ErrorCode::kTrailingBytes);

  // add_stream refuses anything that is not a version-1 frame.
  EXPECT_EQ(code_of([&] {
              (void)add_stream(add_stream(sample_v1_frame(), 1), 2);
            }),
            ErrorCode::kBadVersion);
  const std::vector<std::uint8_t> shorty{0x45, 0x59, 0x57};
  EXPECT_EQ(code_of([&] { (void)add_stream(shorty, 1); }),
            ErrorCode::kTruncated);
  EXPECT_EQ(code_of([&] { (void)strip_stream(shorty); }),
            ErrorCode::kTruncated);
  EXPECT_EQ(peek_stream(shorty), std::nullopt);
}

TEST(MuxEnvelope, HelloRoundTrip) {
  const auto frame = Hello{.capabilities = kCapMux}.encode(/*sender=*/42);
  const Envelope env = decode_envelope(frame);
  EXPECT_EQ(env.kind, MsgKind::kHello);
  EXPECT_EQ(env.sender, 42u);
  const Hello hello = Hello::decode(env);
  EXPECT_EQ(hello.capabilities, kCapMux);

  // An empty capability set is legal (the "we share nothing" answer).
  const Hello none = Hello::decode(
      decode_envelope(Hello{.capabilities = 0}.encode(/*sender=*/0)));
  EXPECT_EQ(none.capabilities, 0u);
}

TEST(MuxEnvelope, ErrorReplyRetryAfterHint) {
  // A hinted refusal round-trips its backoff hint; a hintless one is the
  // exact pre-hint encoding (same bytes minus the trailing u32), so old
  // decoders only ever see the form they already parse.
  const ErrorReply hintless{.code = ErrorCode::kUnavailable,
                            .detail = "lane at depth cap"};
  const ErrorReply hinted{.code = ErrorCode::kUnavailable,
                          .detail = "lane at depth cap",
                          .retry_after_ms = 25};
  const auto hintless_frame = hintless.encode();
  const auto hinted_frame = hinted.encode();
  ASSERT_EQ(hinted_frame.size(), hintless_frame.size() + 4);

  const ErrorReply a = ErrorReply::decode(decode_envelope(hintless_frame));
  EXPECT_EQ(a.code, ErrorCode::kUnavailable);
  EXPECT_EQ(a.retry_after_ms, 0u);
  const ErrorReply b = ErrorReply::decode(decode_envelope(hinted_frame));
  EXPECT_EQ(b.code, ErrorCode::kUnavailable);
  EXPECT_EQ(b.detail, "lane at depth cap");
  EXPECT_EQ(b.retry_after_ms, 25u);
}

// ------------------------------------------------- dispatcher lane bound

TEST(DispatcherOverload, PausedLaneShedsExactlyThePastBoundSubmits) {
  // The deterministic overload inducer from the dispatcher's contract:
  // freeze the worker, fire bound + S submits, observe exactly S
  // immediate sheds with the configured retry-after hint, resume, and
  // every accepted frame is still answered.
  constexpr std::size_t kBound = 4;
  constexpr std::size_t kOver = 3;
  server::EndpointCounters counters;
  server::AsyncDispatcher dispatcher(
      [](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);
        return encode_ack();
      },
      /*lanes=*/1, [](std::span<const std::uint8_t>) { return 0u; },
      /*barrier=*/nullptr,
      {.max_lane_depth = kBound, .retry_after_ms = 40, .counters = &counters});

  dispatcher.pause();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<std::uint8_t>> replies;
  std::size_t immediate = 0;  // completions fired while still paused
  for (std::size_t i = 0; i < kBound + kOver; ++i) {
    dispatcher.submit(encode_oprf_key_query(),
                      [&](std::vector<std::uint8_t> reply) {
                        std::lock_guard<std::mutex> lock(mu);
                        replies.push_back(std::move(reply));
                        cv.notify_one();
                      });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    immediate = replies.size();
  }
  EXPECT_EQ(immediate, kOver) << "sheds must complete without the worker";
  EXPECT_EQ(dispatcher.shed(), kOver);
  EXPECT_EQ(dispatcher.accepted(), kBound);
  for (std::size_t i = 0; i < immediate; ++i) {
    const ErrorReply e = ErrorReply::decode(decode_envelope(replies[i]));
    EXPECT_EQ(e.code, ErrorCode::kUnavailable);
    EXPECT_EQ(e.retry_after_ms, 40u);
  }
  // The sheds are mirrored onto the endpoint refusal tallies.
  EXPECT_EQ(counters.shed_ingest.load(), kOver);
  EXPECT_EQ(counters.refusals.load(), kOver);
  EXPECT_EQ(
      counters
          .refused_by_code[static_cast<std::size_t>(ErrorCode::kUnavailable)]
          .load(),
      kOver);

  dispatcher.resume();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return replies.size() == kBound + kOver; });
  }
  for (std::size_t i = immediate; i < replies.size(); ++i)
    EXPECT_EQ(decode_envelope(replies[i]).kind, MsgKind::kAck);
  EXPECT_EQ(dispatcher.pending(), 0u);
}

TEST(DispatcherOverload, UnboundedLanesNeverShed) {
  server::AsyncDispatcher dispatcher([](std::span<const std::uint8_t>) {
    return encode_ack();
  });
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  for (int i = 0; i < 64; ++i)
    dispatcher.submit(encode_oprf_key_query(), [&](std::vector<std::uint8_t>) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 64; });
  EXPECT_EQ(dispatcher.shed(), 0u);
  EXPECT_EQ(dispatcher.accepted(), 64u);
}

// ------------------------------------------------------------ end to end

TEST(MuxEndToEnd, ManyStreamsOneConnectionCorrelatePerStream) {
  // 32 logical streams, 4 pipelined exchanges each, one socket. The
  // server tags each reply with the request's (sender, round); every
  // stream must see its own exchanges complete in its own submission
  // order, and both ends must account exactly one connection.
  FrameServer server(
      [](std::span<const std::uint8_t> frame) {
        const Envelope env = decode_envelope(frame);
        return ErrorReply{.code = ErrorCode::kOk,
                          .detail = std::to_string(env.sender) + ":" +
                                    std::to_string(env.round)}
            .encode();
      },
      {.reactor_shards = 1});

  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open_mux("127.0.0.1", server.port());

  constexpr std::uint32_t kStreams = 32;
  constexpr std::uint64_t kPerStream = 4;
  std::vector<std::shared_ptr<MuxStream>> streams;
  for (std::uint32_t s = 0; s < kStreams; ++s)
    streams.push_back(channel->open_stream());
  EXPECT_EQ(channel->streams_opened(), kStreams);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<std::vector<std::string>> per_stream(kStreams);
  std::uint64_t v1_bytes_sent = 0;
  for (std::uint64_t round = 0; round < kPerStream; ++round) {
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      const auto frame =
          encode_envelope(MsgKind::kOprfKeyQuery, /*sender=*/s, round, {});
      v1_bytes_sent += frame.size();
      streams[s]->exchange_async(frame, [&, s](AsyncResult r) {
        ASSERT_TRUE(r.ok());
        const ErrorReply reply = ErrorReply::decode(decode_envelope(r.reply));
        std::lock_guard<std::mutex> lock(mu);
        per_stream[s].push_back(reply.detail);
        ++done;
        cv.notify_one();
      });
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kStreams * kPerStream; });
  }
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(per_stream[s].size(), kPerStream) << "stream " << s;
    for (std::uint64_t round = 0; round < kPerStream; ++round)
      EXPECT_EQ(per_stream[s][round],
                std::to_string(s) + ":" + std::to_string(round))
          << "stream " << s << " exchange " << round
          << " correlated to the wrong request";
  }

  EXPECT_TRUE(channel->mux_negotiated());
  EXPECT_EQ(reactor.counters().mux_negotiated, 1u);
  const FrameServerStats ss = server.stats();
  EXPECT_EQ(ss.reactor.connections_accepted, 1u)
      << "the whole swarm must ride one socket";
  EXPECT_EQ(ss.reactor.mux_connections, 1u);
  EXPECT_EQ(ss.reactor.streams_shed, 0u);

  // Byte accounting is on the version-1 bytes (what a dedicated
  // connection would carry), so mux and socket-per-reporter swarms report
  // identical totals. The Hello handshake is channel plumbing, not an
  // exchange, and must not pollute the stats.
  const TransportStats cs = channel->stats();
  EXPECT_EQ(cs.messages_sent, kStreams * kPerStream);
  EXPECT_EQ(cs.messages_received, kStreams * kPerStream);
  EXPECT_EQ(cs.bytes_sent, v1_bytes_sent);
}

TEST(MuxEndToEnd, SlowStreamDoesNotStallSiblings) {
  // Deterministic backpressure: stream A's handler completion is
  // withheld; eight exchanges on sibling stream B must complete while A
  // is still in flight on the same socket. Releasing A completes it too.
  std::mutex held_mu;
  std::vector<CompletionFn> held;
  FrameServer server(
      [&](std::vector<std::uint8_t> frame, CompletionFn done) {
        const Envelope env = decode_envelope(frame);
        if (env.round == 1) {  // the slow stream's marker
          std::lock_guard<std::mutex> lock(held_mu);
          held.push_back(std::move(done));
          return;
        }
        done(encode_ack());
      },
      {.reactor_shards = 1});

  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open_mux("127.0.0.1", server.port());
  auto slow = channel->open_stream();
  auto fast = channel->open_stream();

  Caught slow_caught;
  slow->exchange_async(
      encode_envelope(MsgKind::kOprfKeyQuery, 0, /*round=*/1, {}),
      slow_caught.sink());

  std::mutex mu;
  std::condition_variable cv;
  std::size_t fast_done = 0;
  for (int i = 0; i < 8; ++i)
    fast->exchange_async(
        encode_envelope(MsgKind::kOprfKeyQuery, 0, /*round=*/0, {}),
        [&](AsyncResult r) {
          ASSERT_TRUE(r.ok());
          (void)expect_reply(r.reply, MsgKind::kAck);
          std::lock_guard<std::mutex> lock(mu);
          ++fast_done;
          cv.notify_one();
        });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fast_done == 8; });
  }
  // All eight siblings answered; the slow stream is still pinned.
  {
    std::lock_guard<std::mutex> lock(slow_caught.mu);
    EXPECT_FALSE(slow_caught.done)
        << "slow stream completed before its handler did";
  }
  {
    std::lock_guard<std::mutex> lock(held_mu);
    ASSERT_EQ(held.size(), 1u);
    held[0](encode_ack());
  }
  const AsyncResult r = slow_caught.wait();
  ASSERT_TRUE(r.ok());
  (void)expect_reply(r.reply, MsgKind::kAck);
  EXPECT_EQ(server.stats().reactor.connections_accepted, 1u);
}

TEST(MuxEndToEnd, StreamIdAboveCapRefusedHintlessAndNotRetried) {
  // The per-connection stream cap is a permanent refusal: no retry hint,
  // delivered to the caller even with the retry loop enabled.
  FrameServer server(
      [](std::span<const std::uint8_t> frame) {
        (void)decode_envelope(frame);
        return encode_ack();
      },
      {.reactor_shards = 1, .max_streams_per_connection = 4});

  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open_mux("127.0.0.1", server.port());

  // Ids within the cap work.
  auto ok_stream = channel->open_stream();  // id 1
  Caught ok;
  ok_stream->exchange_async(encode_oprf_key_query(), ok.sink());
  const AsyncResult r_ok = ok.wait();
  ASSERT_TRUE(r_ok.ok());
  (void)expect_reply(r_ok.reply, MsgKind::kAck);

  // Id 7 > cap 4: refused on the spot, hintless.
  auto over = channel->open_stream(/*id=*/7);
  Caught refused;
  over->exchange_async(encode_oprf_key_query(), refused.sink());
  const AsyncResult r = refused.wait();
  ASSERT_TRUE(r.ok());  // a refusal is a delivered reply, not an I/O error
  const ErrorReply e = ErrorReply::decode(decode_envelope(r.reply));
  EXPECT_EQ(e.code, ErrorCode::kUnavailable);
  EXPECT_EQ(e.retry_after_ms, 0u) << "cap refusals are permanent: no hint";
  EXPECT_EQ(channel->unavailable_retries(), 0u)
      << "hintless refusals must not enter the retry loop";
  EXPECT_EQ(server.stats().reactor.streams_shed, 1u);
}

TEST(MuxEndToEnd, BacklogShedPreservesPerStreamReplyOrder) {
  // One stream, its first handler withheld, backlog bound 1: of five
  // submissions, #1 is in flight, #2 queued, #3..#5 shed. The sheds must
  // come back *in submission order* behind the real replies (queued
  // markers, not out-of-band answers), carrying the configured hint.
  std::mutex held_mu;
  std::vector<CompletionFn> held;
  std::atomic<int> calls{0};
  FrameServer server(
      [&](std::vector<std::uint8_t> frame, CompletionFn done) {
        (void)decode_envelope(frame);
        if (calls.fetch_add(1, std::memory_order_relaxed) == 0) {
          std::lock_guard<std::mutex> lock(held_mu);
          held.push_back(std::move(done));
          return;
        }
        done(encode_ack());
      },
      {.reactor_shards = 1,
       .max_stream_backlog = 1,
       .stream_shed_retry_after_ms = 30});

  // Retries disabled: the shed replies are delivered raw, in order.
  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open_mux("127.0.0.1", server.port(),
                                  {.max_unavailable_retries = 0});
  auto stream = channel->open_stream();

  std::mutex mu;
  std::condition_variable cv;
  std::vector<AsyncResult> results;
  for (int i = 0; i < 5; ++i)
    stream->exchange_async(encode_oprf_key_query(), [&](AsyncResult r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(r));
      cv.notify_one();
    });

  // Wait until the sheds are queued server-side (the three markers), then
  // release the withheld handler.
  for (int i = 0; i < 2'000 && server.stats().reactor.streams_shed < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.stats().reactor.streams_shed, 3u);
  {
    std::lock_guard<std::mutex> lock(held_mu);
    ASSERT_EQ(held.size(), 1u);
    held[0](encode_ack());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return results.size() == 5; });
  }
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(results[static_cast<std::size_t>(i)].ok()) << i;
  // #1 (released) and #2 (queued behind it) succeed; #3..#5 are sheds.
  (void)expect_reply(results[0].reply, MsgKind::kAck);
  (void)expect_reply(results[1].reply, MsgKind::kAck);
  for (int i = 2; i < 5; ++i) {
    const ErrorReply e = ErrorReply::decode(
        decode_envelope(results[static_cast<std::size_t>(i)].reply));
    EXPECT_EQ(e.code, ErrorCode::kUnavailable) << "reply " << i;
    EXPECT_EQ(e.retry_after_ms, 30u) << "reply " << i;
  }
}

TEST(MuxEndToEnd, HintedShedsAreTransparentlyRetried) {
  // With the retry loop on (the default), a backlog shed never reaches
  // the caller: the client resubmits after the hint and the retry lands
  // once the stream drained. Client and server shed tallies must agree.
  std::mutex held_mu;
  std::vector<CompletionFn> held;
  std::atomic<int> calls{0};
  FrameServer server(
      [&](std::vector<std::uint8_t> frame, CompletionFn done) {
        (void)decode_envelope(frame);
        if (calls.fetch_add(1, std::memory_order_relaxed) == 0) {
          std::lock_guard<std::mutex> lock(held_mu);
          held.push_back(std::move(done));
          return;
        }
        done(encode_ack());
      },
      {.reactor_shards = 1,
       .max_stream_backlog = 1,
       .stream_shed_retry_after_ms = 5});

  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open_mux("127.0.0.1", server.port());
  auto stream = channel->open_stream();

  std::mutex mu;
  std::condition_variable cv;
  std::size_t acked = 0;
  for (int i = 0; i < 5; ++i)
    stream->exchange_async(encode_oprf_key_query(), [&](AsyncResult r) {
      ASSERT_TRUE(r.ok());
      (void)expect_reply(r.reply, MsgKind::kAck);
      std::lock_guard<std::mutex> lock(mu);
      ++acked;
      cv.notify_one();
    });

  for (int i = 0; i < 2'000 && server.stats().reactor.streams_shed < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    std::lock_guard<std::mutex> lock(held_mu);
    ASSERT_EQ(held.size(), 1u);
    held[0](encode_ack());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return acked == 5; });
  }
  EXPECT_GE(channel->unavailable_retries(), 3u);
  EXPECT_EQ(channel->unavailable_retries(),
            server.stats().reactor.streams_shed)
      << "every server shed must be matched by one client retry";
  EXPECT_EQ(reactor.counters().unavailable_retries,
            channel->unavailable_retries());
}

// ----------------------------------------------------------- old peers

TEST(MuxInterop, UnNegotiatedConnectionMatchesBlockingClientByteForByte) {
  // A legacy ClientChannel (no Hello) against the mux-capable server:
  // the exchange must be byte-identical to the blocking TcpTransport,
  // and the server must count zero mux connections — the un-negotiated
  // path is untouched.
  FrameServer server([](std::span<const std::uint8_t> frame) {
    (void)decode_envelope(frame);
    return encode_ack();
  });

  TcpTransport blocking("127.0.0.1", server.port());
  ClientReactor reactor({.shards = 1});
  auto channel = reactor.open("127.0.0.1", server.port());
  SyncTransportAdapter adapted(*channel);

  const auto request = encode_oprf_key_query();
  const auto want = blocking.exchange(request);
  const auto got = adapted.exchange(request);
  EXPECT_EQ(want, got);
  EXPECT_EQ(blocking.stats().bytes_sent, adapted.stats().bytes_sent);
  EXPECT_EQ(blocking.stats().bytes_received, adapted.stats().bytes_received);

  const FrameServerStats ss = server.stats();
  EXPECT_EQ(ss.reactor.mux_connections, 0u);
  EXPECT_EQ(ss.reactor.streams_shed, 0u);
  // The server's byte tally is exactly the two version-1 requests: no
  // stream ids, no Hello — nothing new on the wire.
  EXPECT_EQ(ss.bytes_received, 2 * request.size());
}

TEST(MuxInterop, ClientDegradesToLegacyFifoAgainstPreHelloPeer) {
  // A hand-rolled pre-PR 9 peer: strictly request-ordered FIFO, answers
  // Hello with Error(kUnknownKind) because the kind is not in its
  // catalogue. open_mux against it must degrade every stream onto the
  // legacy shared FIFO — serialized but correct, version-1 bytes only.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::atomic<int> served{0};
  std::atomic<bool> saw_v2{false};
  std::thread peer([&] {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    for (;;) {
      const auto frame = raw::read_framed(fd);
      if (frame.empty()) break;
      if (frame.size() > 4 && frame[4] != 1) saw_v2.store(true);
      std::vector<std::uint8_t> reply;
      if (peek_kind(frame) == MsgKind::kHello) {
        reply = ErrorReply{.code = ErrorCode::kUnknownKind,
                           .detail = "kind 18 not in catalogue"}
                    .encode();
      } else {
        reply = ErrorReply{.code = ErrorCode::kOk,
                           .detail = std::to_string(
                               served.fetch_add(1,
                                                std::memory_order_relaxed))}
                    .encode();
      }
      if (!raw::send_all(fd, raw::with_prefix(reply))) break;
    }
    ::close(fd);
  });

  {
    ClientReactor reactor({.shards = 1});
    auto channel = reactor.open_mux("127.0.0.1", port);
    std::vector<std::shared_ptr<MuxStream>> streams;
    for (int s = 0; s < 3; ++s) streams.push_back(channel->open_stream());

    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::string> details;
    for (int i = 0; i < 6; ++i)
      streams[static_cast<std::size_t>(i % 3)]->exchange_async(
          encode_oprf_key_query(), [&](AsyncResult r) {
            ASSERT_TRUE(r.ok());
            const ErrorReply reply =
                ErrorReply::decode(decode_envelope(r.reply));
            std::lock_guard<std::mutex> lock(mu);
            details.push_back(reply.detail);
            cv.notify_one();
          });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return details.size() == 6; });
    }
    // Global submission order on the shared FIFO: completions correlate
    // one-to-one with the peer's service order.
    for (int i = 0; i < 6; ++i)
      EXPECT_EQ(details[static_cast<std::size_t>(i)], std::to_string(i));
    EXPECT_FALSE(channel->mux_negotiated());
    EXPECT_EQ(reactor.counters().mux_negotiated, 0u);
    EXPECT_FALSE(saw_v2.load())
        << "a version-2 frame reached a peer that never negotiated";
  }
  peer.join();
  ::close(listener);
}

// --------------------------------------------------------- bit identity

TEST(MuxEndToEnd, MuxSwarmRoundBitIdenticalToInProcess) {
  // 256 logical reporters on ONE socket, full server stack (cluster
  // behind a bounded sharded dispatcher behind the reactor), control
  // plane on a second legacy connection: the finalized aggregate must be
  // bit-identical to the same submissions applied in-process, with the
  // whole swarm costing two accepted connections.
  constexpr std::size_t kReporters = 256;
  const server::BackendConfig config{
      .cms_params = {.depth = 4, .width = 64},
      .cms_hash_seed = 9,
      .id_space = 2'000,
      .users_rule = core::ThresholdRule::kMean};

  server::BackendCluster cluster(config, 2);
  server::BackendEndpoint endpoint(cluster, /*serve_control=*/true);
  server::AsyncDispatcher dispatcher(
      [&](std::span<const std::uint8_t> frame) {
        return endpoint.handle(frame);
      },
      /*lanes=*/2, server::cluster_lane_router(cluster),
      server::control_plane_barrier(),
      {.max_lane_depth = 4096, .counters = &endpoint.counters()});
  FrameServer server(dispatcher.handler(), {.reactor_shards = 1});
  dispatcher.set_frame_recycler(server.frame_recycler());

  const auto make_cells = [&](std::size_t i) {
    std::vector<std::uint32_t> cells(config.cms_params.cells());
    for (std::size_t c = 0; c < cells.size(); ++c)
      cells[c] = static_cast<std::uint32_t>(i * 40503u + c * 7u);
    return cells;
  };

  ClientReactor reactor({.shards = 2});
  auto control = reactor.open("127.0.0.1", server.port());
  server::RemoteBackend remote(*control, config);
  remote.begin_round(/*round=*/7, kReporters);

  auto channel = reactor.open_mux("127.0.0.1", server.port());
  std::vector<std::shared_ptr<MuxStream>> streams;
  streams.reserve(kReporters);
  for (std::size_t i = 0; i < kReporters; ++i)
    streams.push_back(channel->open_stream());

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::atomic<std::size_t> acked{0};
  for (std::size_t i = 0; i < kReporters; ++i) {
    const auto frame = BlindedReport{
        .participant = static_cast<std::uint32_t>(i),
        .params = config.cms_params,
        .cells = make_cells(i)}
                           .encode(/*round=*/7);
    streams[i]->exchange_async(frame, [&](AsyncResult r) {
      if (r.ok()) {
        try {
          (void)expect_reply(r.reply, MsgKind::kAck);
          acked.fetch_add(1, std::memory_order_relaxed);
        } catch (const ProtoError&) {
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kReporters; });
  }
  EXPECT_EQ(acked.load(), kReporters);
  EXPECT_TRUE(remote.missing_participants().empty());
  const server::RoundResult got = remote.finalize_round();

  server::BackendCluster reference(config, 2);
  reference.begin_round(/*round=*/7, kReporters);
  for (std::size_t i = 0; i < kReporters; ++i)
    reference.submit_report(i, make_cells(i));
  const server::RoundResult want = reference.finalize_round();

  const auto want_cells = want.aggregate.cells();
  const auto got_cells = got.aggregate.cells();
  ASSERT_EQ(want_cells.size(), got_cells.size());
  for (std::size_t c = 0; c < want_cells.size(); ++c)
    ASSERT_EQ(want_cells[c], got_cells[c]) << "cell " << c;
  EXPECT_EQ(want.users_threshold, got.users_threshold);
  EXPECT_EQ(want.distribution.counts(), got.distribution.counts());
  EXPECT_EQ(got.reports, kReporters);

  const FrameServerStats ss = server.stats();
  EXPECT_EQ(ss.reactor.connections_accepted, 2u)
      << "control + one mux socket, nothing per reporter";
  EXPECT_EQ(ss.reactor.mux_connections, 1u);
  EXPECT_EQ(ss.reactor.streams_shed, 0u);
  EXPECT_EQ(endpoint.counters().shed_ingest.load(), 0u);
  EXPECT_EQ(endpoint.counters().reports_accepted.load(), kReporters);
}

}  // namespace
}  // namespace eyw::proto
