#include "core/thresholds.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace eyw::core {
namespace {

const std::vector<double> kDist{1, 2, 2, 3, 4, 6};

TEST(Thresholds, Mean) {
  EXPECT_DOUBLE_EQ(estimate_threshold(kDist, ThresholdRule::kMean), 3.0);
}

TEST(Thresholds, Median) {
  EXPECT_DOUBLE_EQ(estimate_threshold(kDist, ThresholdRule::kMedian), 2.5);
}

TEST(Thresholds, MeanPlusMedian) {
  EXPECT_DOUBLE_EQ(
      estimate_threshold(kDist, ThresholdRule::kMeanPlusMedian), 5.5);
}

TEST(Thresholds, MeanPlusStddevAboveMean) {
  const double t = estimate_threshold(kDist, ThresholdRule::kMeanPlusStddev);
  EXPECT_GT(t, 3.0);
}

TEST(Thresholds, EmptyDistributionIsZero) {
  for (const auto rule :
       {ThresholdRule::kMean, ThresholdRule::kMedian,
        ThresholdRule::kMeanPlusMedian, ThresholdRule::kMeanPlusStddev}) {
    EXPECT_DOUBLE_EQ(estimate_threshold(std::vector<double>{}, rule), 0.0);
  }
}

TEST(Thresholds, SingleElement) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(estimate_threshold(one, ThresholdRule::kMean), 5.0);
  EXPECT_DOUBLE_EQ(estimate_threshold(one, ThresholdRule::kMedian), 5.0);
  EXPECT_DOUBLE_EQ(estimate_threshold(one, ThresholdRule::kMeanPlusMedian),
                   10.0);
  EXPECT_DOUBLE_EQ(estimate_threshold(one, ThresholdRule::kMeanPlusStddev),
                   5.0);
}

// Mean+Median is always at least Mean for non-negative samples, which is
// why Figure 3 shows it trading extra repetitions for fewer false negatives.
class ThresholdOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThresholdOrdering, StricterRulesNeedMoreRepetitions) {
  util::Rng rng = util::Rng(GetParam());
  std::vector<double> dist;
  for (int i = 0; i < 50; ++i)
    dist.push_back(1.0 + static_cast<double>(rng.below(10)));
  const double mean_th = estimate_threshold(dist, ThresholdRule::kMean);
  const double mm_th =
      estimate_threshold(dist, ThresholdRule::kMeanPlusMedian);
  const double ms_th =
      estimate_threshold(dist, ThresholdRule::kMeanPlusStddev);
  EXPECT_GE(mm_th, mean_th);
  EXPECT_GE(ms_th, mean_th);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdOrdering,
                         ::testing::Values(1, 7, 42, 1337, 9999));

TEST(Thresholds, ToStringCoversAllRules) {
  EXPECT_STREQ(to_string(ThresholdRule::kMean), "Mean");
  EXPECT_STREQ(to_string(ThresholdRule::kMedian), "Median");
  EXPECT_STREQ(to_string(ThresholdRule::kMeanPlusMedian), "Mean+Median");
  EXPECT_STREQ(to_string(ThresholdRule::kMeanPlusStddev), "Mean+Stddev");
}

TEST(Verdict, ToString) {
  EXPECT_STREQ(to_string(Verdict::kTargeted), "targeted");
  EXPECT_STREQ(to_string(Verdict::kNonTargeted), "non-targeted");
  EXPECT_STREQ(to_string(Verdict::kInsufficientData), "insufficient-data");
}

}  // namespace
}  // namespace eyw::core
