// Property-style sweeps over the detector: invariants that must hold for
// any random impression stream.
#include <gtest/gtest.h>

#include "core/global_view.hpp"
#include "core/local_detector.hpp"
#include "util/rng.hpp"

namespace eyw::core {
namespace {

class DetectorProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorProperties, DomainsCountMatchesNaiveRecount) {
  util::Rng rng(GetParam());
  LocalDetector det;
  std::map<AdId, std::map<DomainId, Day>> naive;
  Day day = 0;
  for (int i = 0; i < 400; ++i) {
    if (rng.chance(0.1)) ++day;
    const AdId ad = rng.below(20);
    const auto domain = static_cast<DomainId>(rng.below(15));
    det.observe(ad, domain, day);
    naive[ad][domain] = day;
  }
  // Recount with identical expiry semantics.
  const Day cutoff = day + 1 >= 7 ? day + 1 - 7 : 0;
  for (const auto& [ad, domains] : naive) {
    std::size_t live = 0;
    for (const auto& [domain, last] : domains) live += last >= cutoff;
    EXPECT_EQ(det.domains_for(ad), live) << "ad " << ad;
  }
}

TEST_P(DetectorProperties, ThresholdWithinDistributionRange) {
  util::Rng rng(GetParam() ^ 1);
  LocalDetector det;
  for (int i = 0; i < 300; ++i) {
    det.observe(rng.below(30), static_cast<DomainId>(rng.below(12)), 0);
  }
  const auto dist = det.domain_count_distribution();
  ASSERT_FALSE(dist.empty());
  const double th = det.domains_threshold();
  EXPECT_GE(th, *std::min_element(dist.begin(), dist.end()));
  EXPECT_LE(th, *std::max_element(dist.begin(), dist.end()));
}

TEST_P(DetectorProperties, VerdictMonotoneInUsersCount) {
  // For a fixed ad, raising #Users can only flip targeted -> non-targeted,
  // never the other way.
  util::Rng rng(GetParam() ^ 2);
  LocalDetector det;
  for (int i = 0; i < 200; ++i)
    det.observe(rng.below(25), static_cast<DomainId>(rng.below(10)), 0);
  const double th = 5.0;
  for (AdId ad = 0; ad < 25; ++ad) {
    bool was_targeted = true;
    for (double users = 1; users <= 10; ++users) {
      const bool targeted = det.classify(ad, users, th) == Verdict::kTargeted;
      if (!was_targeted) {
        EXPECT_FALSE(targeted);
      }
      was_targeted = targeted;
    }
  }
}

TEST_P(DetectorProperties, ExpiryNeverIncreasesCounters) {
  util::Rng rng(GetParam() ^ 3);
  LocalDetector det;
  Day day = 0;
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.02)) ++day;  // non-decreasing days, as in real time
    det.observe(rng.below(25), static_cast<DomainId>(rng.below(10)), day);
  }
  std::map<AdId, std::uint32_t> before;
  for (const AdId ad : det.ads_in_window()) before[ad] = det.domains_for(ad);
  det.advance_to(day + 3);
  for (const auto& [ad, count] : before)
    EXPECT_LE(det.domains_for(ad), count);
  det.advance_to(day + 50);
  EXPECT_TRUE(det.ads_in_window().empty());
  EXPECT_EQ(det.ad_serving_domains(), 0u);
}

TEST_P(DetectorProperties, GlobalCounterIdempotentUnderReplay) {
  util::Rng rng(GetParam() ^ 4);
  GlobalUserCounter once, twice;
  std::vector<std::pair<UserId, AdId>> events;
  for (int i = 0; i < 300; ++i)
    events.emplace_back(static_cast<UserId>(rng.below(20)), rng.below(40));
  for (const auto& [u, a] : events) once.record(u, a);
  for (int rep = 0; rep < 2; ++rep)
    for (const auto& [u, a] : events) twice.record(u, a);
  for (AdId a = 0; a < 40; ++a)
    EXPECT_EQ(once.users_for(a), twice.users_for(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace eyw::core
