#include "core/global_view.hpp"

#include <gtest/gtest.h>

namespace eyw::core {
namespace {

TEST(GlobalUserCounter, DistinctUserCounting) {
  GlobalUserCounter c;
  c.record(1, 100);
  c.record(2, 100);
  c.record(1, 100);  // duplicate sighting: idempotent
  c.record(3, 200);
  EXPECT_EQ(c.users_for(100), 2u);
  EXPECT_EQ(c.users_for(200), 1u);
  EXPECT_EQ(c.users_for(999), 0u);
  EXPECT_EQ(c.distinct_ads(), 2u);
}

TEST(GlobalUserCounter, DistributionHasOneEntryPerAd) {
  GlobalUserCounter c;
  c.record(1, 100);
  c.record(2, 100);
  c.record(1, 200);
  const auto dist = c.distribution();
  ASSERT_EQ(dist.size(), 2u);
  // map order: ad 100 first.
  EXPECT_DOUBLE_EQ(dist[0], 2.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
}

TEST(GlobalUserCounter, ClearResets) {
  GlobalUserCounter c;
  c.record(1, 100);
  c.clear();
  EXPECT_EQ(c.distinct_ads(), 0u);
  EXPECT_EQ(c.users_for(100), 0u);
}

TEST(UsersDistribution, ThresholdIsMeanOfCounts) {
  const std::vector<double> counts{1, 2, 3, 4};
  const auto d = UsersDistribution::from_counts(counts);
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMean), 2.5);
}

TEST(UsersDistribution, ZeroCountsExcluded) {
  // CMS queries over the over-provisioned id space return 0 for ids that
  // map to no real ad; those must not drag the threshold down.
  const std::vector<double> counts{0, 0, 2, 4, 0};
  const auto d = UsersDistribution::from_counts(counts);
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMean), 3.0);
  EXPECT_EQ(d.counts().size(), 2u);
}

TEST(UsersDistribution, EmptyIsSafe) {
  const auto d = UsersDistribution::from_counts(std::vector<double>{});
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMean), 0.0);
}

TEST(UsersDistribution, HistogramMatchesCounts) {
  const std::vector<double> counts{2, 2, 3};
  const auto d = UsersDistribution::from_counts(counts);
  EXPECT_EQ(d.histogram().count(2), 2u);
  EXPECT_EQ(d.histogram().count(3), 1u);
  EXPECT_EQ(d.histogram().total(), 3u);
}

TEST(UsersDistribution, MedianAndMeanRulesDiffer) {
  const std::vector<double> counts{1, 1, 1, 1, 16};
  const auto d = UsersDistribution::from_counts(counts);
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMedian), 1.0);
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMean), 4.0);
}

TEST(UsersDistribution, EndToEndWithCounter) {
  GlobalUserCounter c;
  // Ad 1 seen by 3 users, ad 2 by 1 user.
  c.record(1, 1);
  c.record(2, 1);
  c.record(3, 1);
  c.record(1, 2);
  const auto d = UsersDistribution::from_counts(c.distribution());
  EXPECT_DOUBLE_EQ(d.threshold(ThresholdRule::kMean), 2.0);
}

}  // namespace
}  // namespace eyw::core
