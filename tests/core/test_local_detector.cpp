#include "core/local_detector.hpp"

#include <gtest/gtest.h>

namespace eyw::core {
namespace {

TEST(LocalDetector, StartsEmpty) {
  LocalDetector d;
  EXPECT_EQ(d.ad_serving_domains(), 0u);
  EXPECT_EQ(d.domains_for(1), 0u);
  EXPECT_FALSE(d.has_sufficient_data());
  EXPECT_TRUE(d.ads_in_window().empty());
}

TEST(LocalDetector, CountsDistinctDomainsPerAd) {
  LocalDetector d;
  d.observe(/*ad=*/1, /*domain=*/10, /*day=*/0);
  d.observe(1, 11, 0);
  d.observe(1, 11, 1);  // repeat domain: not counted twice
  d.observe(1, 12, 2);
  EXPECT_EQ(d.domains_for(1), 3u);
}

TEST(LocalDetector, SeparateAdsSeparateCounters) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(2, 10, 0);
  d.observe(2, 11, 0);
  EXPECT_EQ(d.domains_for(1), 1u);
  EXPECT_EQ(d.domains_for(2), 2u);
}

TEST(LocalDetector, MinDataRuleAtFourDomains) {
  LocalDetector d;  // default min_ad_serving_domains = 4
  d.observe(1, 10, 0);
  d.observe(2, 11, 0);
  d.observe(3, 12, 0);
  EXPECT_FALSE(d.has_sufficient_data());
  d.observe(4, 13, 0);
  EXPECT_TRUE(d.has_sufficient_data());
}

TEST(LocalDetector, InsufficientDataVerdict) {
  LocalDetector d;
  d.observe(1, 10, 0);
  EXPECT_EQ(d.classify(1, /*users=*/1, /*users_th=*/5),
            Verdict::kInsufficientData);
}

TEST(LocalDetector, WindowExpiryDropsOldImpressions) {
  LocalDetector d;  // 7-day window
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  EXPECT_EQ(d.domains_for(1), 2u);
  d.advance_to(6);  // day 0 still inside [0..6]
  EXPECT_EQ(d.domains_for(1), 2u);
  d.advance_to(7);  // window is now [1..7]: day-0 sightings expire
  EXPECT_EQ(d.domains_for(1), 0u);
}

TEST(LocalDetector, ResightingRefreshesExpiry) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(1, 10, 5);  // same pair re-seen later
  d.advance_to(8);      // day-0 would expire, day-5 survives
  EXPECT_EQ(d.domains_for(1), 1u);
}

TEST(LocalDetector, AdServingDomainsExpireToo) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(2, 11, 0);
  d.observe(3, 12, 0);
  d.observe(4, 13, 0);
  EXPECT_TRUE(d.has_sufficient_data());
  d.advance_to(10);
  EXPECT_FALSE(d.has_sufficient_data());
  EXPECT_EQ(d.ad_serving_domains(), 0u);
}

TEST(LocalDetector, RejectsTimeTravel) {
  LocalDetector d;
  d.observe(1, 10, 5);
  EXPECT_THROW(d.observe(1, 10, 4), std::invalid_argument);
  EXPECT_THROW(d.advance_to(1), std::invalid_argument);
}

TEST(LocalDetector, DomainThresholdIsMeanByDefault) {
  LocalDetector d;
  // Ad 1 on 3 domains, ad 2 on 1 domain: distribution {3, 1}, mean 2.
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  d.observe(1, 12, 0);
  d.observe(2, 13, 0);
  EXPECT_DOUBLE_EQ(d.domains_threshold(), 2.0);
}

TEST(LocalDetector, ClassifyTargetedWhenBothConditionsHold) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  d.observe(1, 12, 0);
  d.observe(2, 13, 0);  // distribution {3,1}: threshold 2
  // Ad 1: 3 domains >= 2, and seen by few users (1 <= 2.5).
  EXPECT_EQ(d.classify(1, 1, 2.5), Verdict::kTargeted);
}

TEST(LocalDetector, ClassifyNonTargetedWhenSeenByMany) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  d.observe(1, 12, 0);
  d.observe(2, 13, 0);
  // Popular ad: users 50 > threshold 2.5.
  EXPECT_EQ(d.classify(1, 50, 2.5), Verdict::kNonTargeted);
}

TEST(LocalDetector, ClassifyNonTargetedWhenNotFollowing) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  d.observe(1, 12, 0);
  d.observe(2, 13, 0);
  // Ad 2 appears on 1 domain < threshold 2: not "following" the user.
  EXPECT_EQ(d.classify(2, 1, 2.5), Verdict::kNonTargeted);
}

TEST(LocalDetector, UnseenAdNeverTargeted) {
  LocalDetector d;
  d.observe(1, 10, 0);
  d.observe(2, 11, 0);
  d.observe(3, 12, 0);
  d.observe(4, 13, 0);
  EXPECT_EQ(d.classify(/*ad=*/999, 0, 10), Verdict::kNonTargeted);
}

TEST(LocalDetector, ConfigurableMinDomains) {
  LocalDetector d({.min_ad_serving_domains = 2});
  d.observe(1, 10, 0);
  EXPECT_FALSE(d.has_sufficient_data());
  d.observe(1, 11, 0);
  EXPECT_TRUE(d.has_sufficient_data());
}

TEST(LocalDetector, ConfigurableWindow) {
  LocalDetector d({.window_days = 2});
  d.observe(1, 10, 0);
  d.advance_to(1);
  EXPECT_EQ(d.domains_for(1), 1u);  // window [0..1]
  d.advance_to(2);                  // window [1..2]
  EXPECT_EQ(d.domains_for(1), 0u);
}

TEST(LocalDetector, RejectsZeroWindow) {
  EXPECT_THROW(LocalDetector({.window_days = 0}), std::invalid_argument);
}

TEST(LocalDetector, AdsInWindowListsLiveAds) {
  LocalDetector d;
  d.observe(5, 10, 0);
  d.observe(9, 11, 3);
  d.advance_to(8);  // ad 5 (day 0) expired, ad 9 (day 3) alive
  const auto ads = d.ads_in_window();
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0], 9u);
}

TEST(LocalDetector, MeanPlusMedianRuleRaisesBar) {
  const DetectorConfig strict{.domains_rule = ThresholdRule::kMeanPlusMedian};
  LocalDetector d(strict);
  d.observe(1, 10, 0);
  d.observe(1, 11, 0);
  d.observe(1, 12, 0);
  d.observe(2, 13, 0);
  // Distribution {3, 1}: mean 2 + median 2 = 4 > 3 domains: not targeted.
  EXPECT_EQ(d.classify(1, 1, 2.5), Verdict::kNonTargeted);
}

}  // namespace
}  // namespace eyw::core
