#include "crypto/dh.hpp"

#include <gtest/gtest.h>

#include "crypto/prime.hpp"

namespace eyw::crypto {
namespace {

// A shared small test group (safe-prime generation is the slow part).
const DhGroup& test_group() {
  static const DhGroup g = [] {
    util::Rng rng(2024);
    return DhGroup::generate(rng, 128);
  }();
  return g;
}

TEST(Dh, GeneratedGroupIsSafePrime) {
  util::Rng rng(1);
  EXPECT_TRUE(is_probable_prime(test_group().p, rng));
  EXPECT_TRUE(is_probable_prime(test_group().p.shr(1), rng));
}

TEST(Dh, Rfc3526GroupLoads) {
  const DhGroup g = DhGroup::rfc3526_2048();
  EXPECT_EQ(g.p.bit_length(), 2048u);
  EXPECT_EQ(g.g.to_u64(), 2u);
  EXPECT_EQ(g.element_bytes(), 256u);
}

TEST(Dh, Rfc3526PrimeIsProbablePrime) {
  util::Rng rng(2);
  EXPECT_TRUE(is_probable_prime(DhGroup::rfc3526_2048().p, rng, 8));
}

TEST(Dh, KeyAgreement) {
  util::Rng rng(3);
  const DhKeyPair alice = dh_keygen(test_group(), rng);
  const DhKeyPair bob = dh_keygen(test_group(), rng);
  const Bignum s_ab =
      dh_shared_secret(test_group(), alice.private_key, bob.public_key);
  const Bignum s_ba =
      dh_shared_secret(test_group(), bob.private_key, alice.public_key);
  EXPECT_EQ(s_ab, s_ba);
  EXPECT_FALSE(s_ab.is_zero());
}

TEST(Dh, DistinctPairsDistinctSecrets) {
  util::Rng rng(4);
  const DhKeyPair a = dh_keygen(test_group(), rng);
  const DhKeyPair b = dh_keygen(test_group(), rng);
  const DhKeyPair c = dh_keygen(test_group(), rng);
  const Bignum s_ab = dh_shared_secret(test_group(), a.private_key, b.public_key);
  const Bignum s_ac = dh_shared_secret(test_group(), a.private_key, c.public_key);
  EXPECT_NE(s_ab, s_ac);
}

TEST(Dh, PublicKeyMatchesExponentiation) {
  util::Rng rng(5);
  const DhKeyPair kp = dh_keygen(test_group(), rng);
  EXPECT_EQ(kp.public_key,
            Bignum::modexp(test_group().g, kp.private_key, test_group().p));
}

TEST(Dh, PrivateKeyInRange) {
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const DhKeyPair kp = dh_keygen(test_group(), rng);
    EXPECT_FALSE(kp.private_key.is_zero());
    EXPECT_LT(kp.private_key.cmp(test_group().p.sub(Bignum(1))), 0);
  }
}

TEST(Dh, SecretToKeyDeterministic) {
  const Bignum s = Bignum::from_hex("abcdef0123456789");
  EXPECT_EQ(dh_secret_to_key(s), dh_secret_to_key(s));
  EXPECT_NE(dh_secret_to_key(s), dh_secret_to_key(s.add(Bignum(1))));
}

}  // namespace
}  // namespace eyw::crypto
