#include "crypto/oprf.hpp"

#include <gtest/gtest.h>

#include <set>

namespace eyw::crypto {
namespace {

class OprfTest : public ::testing::Test {
 protected:
  static const OprfServer& server() {
    static const OprfServer s = [] {
      util::Rng rng(777);
      return OprfServer(rng, 256);
    }();
    return s;
  }
  static OprfClient client() { return OprfClient(server().public_key()); }
};

TEST_F(OprfTest, BlindEvaluationMatchesDirect) {
  util::Rng rng(1);
  const OprfClient c = client();
  for (const char* url :
       {"https://ads.example.com/creative/123",
        "https://cdn.adnet.io/banner?id=9", "x"}) {
    const OprfBlinded blinded = c.blind(url, rng);
    const Bignum response = server().evaluate_blinded(blinded.blinded_element);
    const OprfOutput via_protocol = c.finalize(url, blinded, response);
    const OprfOutput direct = server().evaluate_direct(url);
    EXPECT_EQ(via_protocol.prf, direct.prf) << url;
  }
}

TEST_F(OprfTest, DeterministicAcrossBlindings) {
  // Different blinding factors r must yield the same PRF output.
  util::Rng r1(2), r2(3);
  const OprfClient c = client();
  const std::string url = "https://ads.example.com/a";
  const OprfBlinded b1 = c.blind(url, r1);
  const OprfBlinded b2 = c.blind(url, r2);
  EXPECT_NE(b1.blinded_element, b2.blinded_element);  // blinding is fresh
  const OprfOutput o1 =
      c.finalize(url, b1, server().evaluate_blinded(b1.blinded_element));
  const OprfOutput o2 =
      c.finalize(url, b2, server().evaluate_blinded(b2.blinded_element));
  EXPECT_EQ(o1.prf, o2.prf);
}

TEST_F(OprfTest, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (int i = 0; i < 50; ++i) {
    const std::string url = "https://ads.example.com/" + std::to_string(i);
    outputs.insert(digest_to_u64(server().evaluate_direct(url).prf));
  }
  EXPECT_EQ(outputs.size(), 50u);
}

TEST_F(OprfTest, BlindedElementHidesInput) {
  // The blinded element for the same input under different randomness is
  // uniformly re-randomized — check it differs across all draws.
  util::Rng rng(4);
  const OprfClient c = client();
  std::set<std::string> blinded;
  for (int i = 0; i < 20; ++i)
    blinded.insert(c.blind("same-url", rng).blinded_element.to_hex());
  EXPECT_EQ(blinded.size(), 20u);
}

TEST_F(OprfTest, FinalizeRejectsBogusResponse) {
  util::Rng rng(5);
  const OprfClient c = client();
  const OprfBlinded b = c.blind("https://x", rng);
  const Bignum bogus = b.blinded_element;  // not exponentiated by d
  EXPECT_THROW((void)c.finalize("https://x", b, bogus), std::runtime_error);
}

TEST_F(OprfTest, FinalizeRejectsResponseForOtherInput) {
  util::Rng rng(6);
  const OprfClient c = client();
  const OprfBlinded b1 = c.blind("url-1", rng);
  const OprfBlinded b2 = c.blind("url-2", rng);
  const Bignum resp2 = server().evaluate_blinded(b2.blinded_element);
  EXPECT_THROW((void)c.finalize("url-1", b1, resp2), std::runtime_error);
}

TEST_F(OprfTest, AdIdMappingInRange) {
  for (int i = 0; i < 30; ++i) {
    const auto out =
        server().evaluate_direct("https://a/" + std::to_string(i));
    EXPECT_LT(out.to_ad_id(1000), 1000u);
    EXPECT_LT(out.to_ad_id(7), 7u);
  }
}

TEST_F(OprfTest, BytesPerEvaluationIsTwoGroupElements) {
  EXPECT_EQ(client().bytes_per_evaluation(), 2 * 32u);  // 256-bit modulus
}

TEST_F(OprfTest, EvaluationCounterAdvances) {
  util::Rng rng(7);
  const OprfClient c = client();
  const auto before = server().evaluations();
  const OprfBlinded b = c.blind("count-me", rng);
  (void)server().evaluate_blinded(b.blinded_element);
  EXPECT_EQ(server().evaluations(), before + 1);
}

TEST(HashToZn, StaysInRangeAndNondegenerate) {
  const Bignum n = Bignum::from_hex("f000000000000000000000000000001d");
  for (int i = 0; i < 50; ++i) {
    const Bignum h = hash_to_zn("input" + std::to_string(i), n);
    EXPECT_LT(h.cmp(n), 0);
    EXPECT_FALSE(h.is_zero());
    EXPECT_FALSE(h.is_one());
  }
}

TEST(HashToZn, Deterministic) {
  const Bignum n = Bignum::from_hex("f000000000000000000000000000001d");
  EXPECT_EQ(hash_to_zn("abc", n), hash_to_zn("abc", n));
  EXPECT_NE(hash_to_zn("abc", n), hash_to_zn("abd", n));
}

}  // namespace
}  // namespace eyw::crypto
