#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "util/hex.hpp"

namespace eyw::crypto {
namespace {

std::string hex_of(const Digest& d) {
  return util::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(hex_of(h.finish()), hex_of(sha256(msg))) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes hit all padding branches.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    const auto one = hex_of(a.finish());
    Sha256 b;
    for (char c : msg) b.update(std::string(1, c));
    EXPECT_EQ(one, hex_of(b.finish())) << "len=" << len;
  }
}

TEST(Sha256, UpdateU64IsBigEndianBytes) {
  Sha256 a;
  a.update_u64(0x0102030405060708ULL);
  Sha256 b;
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  b.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  EXPECT_EQ(hex_of(a.finish()), hex_of(b.finish()));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex_of(sha256("a")), hex_of(sha256("b")));
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const auto key = util::from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const std::string data = "Hi There";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      util::as_bytes(data));
  EXPECT_EQ(hex_of(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(util::as_bytes(key), util::as_bytes(data));
  EXPECT_EQ(hex_of(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  const Digest mac =
      hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                  std::span<const std::uint8_t>(data.data(), data.size()));
  EXPECT_EQ(hex_of(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac =
      hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                  util::as_bytes(data));
  EXPECT_EQ(hex_of(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestToU64, TakesFirstEightBytesBigEndian) {
  Digest d{};
  for (std::size_t i = 0; i < 8; ++i) d[i] = static_cast<std::uint8_t>(i + 1);
  EXPECT_EQ(digest_to_u64(d), 0x0102030405060708ULL);
}

TEST(Sha256Expand, LengthAndDeterminism) {
  const std::string seed = "seed";
  const auto a = sha256_expand(util::as_bytes(seed), 100);
  const auto b = sha256_expand(util::as_bytes(seed), 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(Sha256Expand, PrefixConsistency) {
  const std::string seed = "seed";
  const auto small = sha256_expand(util::as_bytes(seed), 16);
  const auto big = sha256_expand(util::as_bytes(seed), 80);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), big.begin()));
}

TEST(Sha256Expand, DifferentSeedsDiffer) {
  const std::string s1 = "seed1", s2 = "seed2";
  EXPECT_NE(sha256_expand(util::as_bytes(s1), 32),
            sha256_expand(util::as_bytes(s2), 32));
}

}  // namespace
}  // namespace eyw::crypto
