#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace eyw::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // One shared 256-bit key for the whole suite: keygen dominates runtime.
  static const RsaKeyPair& key() {
    static const RsaKeyPair k = [] {
      util::Rng rng(1001);
      return rsa_generate(rng, 256);
    }();
    return k;
  }
};

TEST_F(RsaTest, ModulusHasRequestedBits) {
  EXPECT_EQ(key().pub.n.bit_length(), 256u);
  EXPECT_EQ(key().pub.modulus_bytes(), 32u);
}

TEST_F(RsaTest, PublicExponentIsF4) {
  EXPECT_EQ(key().pub.e.to_u64(), 65537u);
}

TEST_F(RsaTest, RoundTripPrivateThenPublic) {
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Bignum x = Bignum::random_below(rng, key().pub.n);
    const Bignum sig = rsa_private_apply(key(), x);
    EXPECT_EQ(rsa_public_apply(key().pub, sig), x);
  }
}

TEST_F(RsaTest, RoundTripPublicThenPrivate) {
  util::Rng rng(6);
  const Bignum x = Bignum::random_below(rng, key().pub.n);
  const Bignum c = rsa_public_apply(key().pub, x);
  EXPECT_EQ(rsa_private_apply(key(), c), x);
}

TEST_F(RsaTest, MultiplicativeHomomorphism) {
  // (ab)^d = a^d b^d mod N — the property blind signatures rely on.
  util::Rng rng(7);
  const Bignum a = Bignum::random_below(rng, key().pub.n);
  const Bignum b = Bignum::random_below(rng, key().pub.n);
  const Bignum ab = Bignum::modmul(a, b, key().pub.n);
  const Bignum lhs = rsa_private_apply(key(), ab);
  const Bignum rhs = Bignum::modmul(rsa_private_apply(key(), a),
                                    rsa_private_apply(key(), b), key().pub.n);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(RsaTest, RejectsOutOfRangeInput) {
  EXPECT_THROW(rsa_public_apply(key().pub, key().pub.n), std::invalid_argument);
  EXPECT_THROW(rsa_private_apply(key(), key().pub.n), std::invalid_argument);
}

TEST(Rsa, GenerateRejectsBadParams) {
  util::Rng rng(8);
  EXPECT_THROW(rsa_generate(rng, 100), std::invalid_argument);  // < 128
  EXPECT_THROW(rsa_generate(rng, 129), std::invalid_argument);  // odd
}

TEST(Rsa, DistinctKeysForDistinctSeeds) {
  util::Rng r1(1), r2(2);
  EXPECT_NE(rsa_generate(r1, 128).pub.n, rsa_generate(r2, 128).pub.n);
}

}  // namespace
}  // namespace eyw::crypto
