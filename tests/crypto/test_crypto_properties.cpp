// Property-style parameterized sweeps over the crypto substrate:
// algebraic identities that must hold for every parameter size and seed.
#include <gtest/gtest.h>

#include "crypto/blinding.hpp"
#include "crypto/oprf.hpp"
#include "crypto/prime.hpp"

namespace eyw::crypto {
namespace {

// ---------- Bignum ring axioms over random operands ----------

class BignumAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BignumAxioms, AdditionCommutesAndAssociates) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::random_bits(rng, 1 + rng.below(300));
    const Bignum b = Bignum::random_bits(rng, 1 + rng.below(300));
    const Bignum c = Bignum::random_bits(rng, 1 + rng.below(300));
    EXPECT_EQ(a.add(b), b.add(a));
    EXPECT_EQ(a.add(b).add(c), a.add(b.add(c)));
  }
}

TEST_P(BignumAxioms, MultiplicationDistributes) {
  util::Rng rng(GetParam() ^ 0xbeef);
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::random_bits(rng, 1 + rng.below(200));
    const Bignum b = Bignum::random_bits(rng, 1 + rng.below(200));
    const Bignum c = Bignum::random_bits(rng, 1 + rng.below(200));
    EXPECT_EQ(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    EXPECT_EQ(a.mul(b), b.mul(a));
  }
}

TEST_P(BignumAxioms, SubInvertsAdd) {
  util::Rng rng(GetParam() ^ 0xcafe);
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::random_bits(rng, 1 + rng.below(400));
    const Bignum b = Bignum::random_bits(rng, 1 + rng.below(400));
    EXPECT_EQ(a.add(b).sub(b), a);
  }
}

TEST_P(BignumAxioms, ModExpProductRule) {
  // b^(e1+e2) == b^e1 * b^e2 (mod m)
  util::Rng rng(GetParam() ^ 0xf00d);
  const Bignum m = Bignum::random_bits(rng, 128).add(Bignum(1));
  const Bignum b = Bignum::random_bits(rng, 100);
  const Bignum e1(rng.below(1000));
  const Bignum e2(rng.below(1000));
  const Bignum lhs = Bignum::modexp(b, e1.add(e2), m);
  const Bignum rhs =
      Bignum::modmul(Bignum::modexp(b, e1, m), Bignum::modexp(b, e2, m), m);
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumAxioms,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------- OPRF consistency across modulus sizes ----------

class OprfSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OprfSizes, BlindEvaluationMatchesDirect) {
  util::Rng rng(GetParam());
  const OprfServer server(rng, GetParam());
  const OprfClient client(server.public_key());
  for (int i = 0; i < 3; ++i) {
    const std::string url = "https://sweep.test/" + std::to_string(i);
    const OprfBlinded blinded = client.blind(url, rng);
    const Bignum resp = server.evaluate_blinded(blinded.blinded_element);
    EXPECT_EQ(client.finalize(url, blinded, resp).prf,
              server.evaluate_direct(url).prf);
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusBits, OprfSizes,
                         ::testing::Values(128, 192, 256, 384, 512));

// ---------- Blinding cancellation across roster sizes & rounds ----------

struct BlindingCase {
  std::size_t roster;
  std::size_t cells;
  std::uint64_t round;
};

class BlindingSweep : public ::testing::TestWithParam<BlindingCase> {};

TEST_P(BlindingSweep, SharesAlwaysCancel) {
  const auto& p = GetParam();
  static const DhGroup group = [] {
    util::Rng rng(606);
    return DhGroup::generate(rng, 128);
  }();
  util::Rng rng(p.roster * 1000 + p.round);
  std::vector<DhKeyPair> keys;
  std::vector<Bignum> publics;
  for (std::size_t i = 0; i < p.roster; ++i) {
    keys.push_back(dh_keygen(group, rng));
    publics.push_back(keys.back().public_key);
  }
  std::vector<BlindCell> sum(p.cells, 0);
  for (std::size_t i = 0; i < p.roster; ++i) {
    const BlindingParticipant participant(group, i, keys[i],
                                          std::span<const Bignum>(publics));
    const auto b = participant.blinding_vector(p.cells, p.round);
    for (std::size_t m = 0; m < p.cells; ++m) sum[m] += b[m];
  }
  for (std::size_t m = 0; m < p.cells; ++m) EXPECT_EQ(sum[m], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RosterAndGeometry, BlindingSweep,
    ::testing::Values(BlindingCase{2, 8, 0}, BlindingCase{3, 64, 1},
                      BlindingCase{5, 33, 2}, BlindingCase{8, 128, 3},
                      BlindingCase{13, 17, 99}));

// ---------- Prime generation across sizes ----------

class PrimeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimeSizes, GeneratedPrimesPassIndependentRounds) {
  util::Rng gen_rng(GetParam());
  util::Rng check_rng(GetParam() ^ 0x5a5a);
  const Bignum p = generate_prime(gen_rng, GetParam());
  EXPECT_EQ(p.bit_length(), GetParam());
  EXPECT_TRUE(is_probable_prime(p, check_rng, 32));
  // p-1 must be even (every prime > 2 is odd).
  EXPECT_TRUE(p.is_odd());
}

INSTANTIATE_TEST_SUITE_P(Bits, PrimeSizes,
                         ::testing::Values(16, 24, 32, 48, 64, 96, 128, 160));

}  // namespace
}  // namespace eyw::crypto
