// Agreement of the Montgomery CIOS core (and the RSA-CRT path built on it)
// with the reference Bignum implementation, across protocol-sized operands.
#include "crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace eyw::crypto {
namespace {

TEST(Montgomery, RejectsEvenOrTrivialModulus) {
  EXPECT_THROW(Montgomery(Bignum(0)), std::invalid_argument);
  EXPECT_THROW(Montgomery(Bignum(1)), std::invalid_argument);
  EXPECT_THROW(Montgomery(Bignum(10)), std::invalid_argument);
}

TEST(Montgomery, SmallKnownValues) {
  const Montgomery mont(Bignum(97));
  EXPECT_EQ(mont.modmul(Bignum(12), Bignum(34)).to_u64(), (12 * 34) % 97u);
  EXPECT_EQ(mont.modexp(Bignum(3), Bignum(13)).to_u64(), 31u);  // 3^13 mod 97
  EXPECT_EQ(mont.modexp(Bignum(5), Bignum(0)).to_u64(), 1u);
  EXPECT_TRUE(mont.modexp(Bignum(0), Bignum(5)).is_zero());
}

TEST(Montgomery, DomainRoundTrip) {
  util::Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    Bignum m = Bignum::random_bits(rng, 1 + rng.below(512));
    if (!m.is_odd()) m = m.add(Bignum(1));
    if (m.is_one()) continue;
    const Montgomery mont(m);
    const Bignum a = Bignum::random_below(rng, m);
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a) << "m=" << m.to_hex();
  }
}

TEST(Montgomery, OneMontRepresentsOne) {
  util::Rng rng(43);
  Bignum m = Bignum::random_bits(rng, 256);
  if (!m.is_odd()) m = m.add(Bignum(1));
  const Montgomery mont(m);
  EXPECT_TRUE(mont.from_mont(mont.one_mont()).is_one());
}

// Property sweep: Montgomery modmul/modexp agree with the reference
// implementation on randomized 512/1024/2048-bit inputs.
class MontgomeryAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MontgomeryAgreement, ModMulMatchesReference) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits);
  for (int i = 0; i < 8; ++i) {
    Bignum m = Bignum::random_bits(rng, bits);
    if (!m.is_odd()) m = m.add(Bignum(1));
    const Montgomery mont(m);
    const Bignum a = Bignum::random_below(rng, m);
    const Bignum b = Bignum::random_below(rng, m);
    EXPECT_EQ(mont.modmul(a, b), Bignum::modmul(a, b, m))
        << "bits=" << bits << " iter=" << i;
  }
}

TEST_P(MontgomeryAgreement, ModExpMatchesReference) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits ^ 0x5eed);
  for (int i = 0; i < 3; ++i) {
    Bignum m = Bignum::random_bits(rng, bits);
    if (!m.is_odd()) m = m.add(Bignum(1));
    const Montgomery mont(m);
    const Bignum base = Bignum::random_bits(rng, bits + 13);  // exercises >= m
    const Bignum exp = Bignum::random_bits(rng, 1 + rng.below(bits));
    EXPECT_EQ(mont.modexp(base, exp), Bignum::modexp_basic(base, exp, m))
        << "bits=" << bits << " iter=" << i;
  }
}

TEST_P(MontgomeryAgreement, DispatchedModexpMatchesReference) {
  const std::size_t bits = GetParam();
  util::Rng rng(bits ^ 0xd15);
  Bignum m = Bignum::random_bits(rng, bits);
  if (!m.is_odd()) m = m.add(Bignum(1));
  const Bignum base = Bignum::random_below(rng, m);
  const Bignum exp = Bignum::random_bits(rng, 64);
  EXPECT_EQ(Bignum::modexp(base, exp, m), Bignum::modexp_basic(base, exp, m));
}

INSTANTIATE_TEST_SUITE_P(Bits, MontgomeryAgreement,
                         ::testing::Values(512, 1024, 2048));

TEST(Montgomery, ExponentEdgeCases) {
  util::Rng rng(47);
  Bignum m = Bignum::random_bits(rng, 192);
  if (!m.is_odd()) m = m.add(Bignum(1));
  const Montgomery mont(m);
  const Bignum base = Bignum::random_below(rng, m);
  for (std::uint64_t e : {0ULL, 1ULL, 2ULL, 15ULL, 16ULL, 17ULL, 255ULL}) {
    EXPECT_EQ(mont.modexp(base, Bignum(e)),
              Bignum::modexp_basic(base, Bignum(e), m))
        << "e=" << e;
  }
}

// RSA-CRT private operation agrees with the plain d-exponentiation and
// inverts the public operation.
class RsaCrtAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaCrtAgreement, CrtMatchesPlainPrivateApply) {
  util::Rng rng(GetParam() + 7);
  const RsaKeyPair key = rsa_generate(rng, GetParam());
  ASSERT_TRUE(key.has_crt());
  RsaKeyPair plain{.pub = key.pub, .d = key.d};
  ASSERT_FALSE(plain.has_crt());
  const RsaPrivateContext crt_ctx(key);
  const RsaPrivateContext plain_ctx(std::move(plain));
  for (int i = 0; i < 4; ++i) {
    const Bignum x = Bignum::random_below(rng, key.pub.n);
    const Bignum via_crt = crt_ctx.private_apply(x);
    EXPECT_EQ(via_crt, plain_ctx.private_apply(x));
    EXPECT_EQ(via_crt, rsa_private_apply(key, x));
    EXPECT_EQ(rsa_public_apply(key.pub, via_crt), x);
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusBits, RsaCrtAgreement,
                         ::testing::Values(256, 512, 1024));

}  // namespace
}  // namespace eyw::crypto
