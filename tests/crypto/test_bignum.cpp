#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eyw::crypto {
namespace {

TEST(Bignum, DefaultIsZero) {
  Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(Bignum, FromU64) {
  Bignum v(0xdeadbeefULL);
  EXPECT_EQ(v.to_hex(), "deadbeef");
  EXPECT_EQ(v.to_u64(), 0xdeadbeefULL);
}

TEST(Bignum, HexRoundTrip) {
  const std::string hex = "123456789abcdef0fedcba9876543210aa55";
  EXPECT_EQ(Bignum::from_hex(hex).to_hex(), hex);
}

TEST(Bignum, HexLeadingZerosDropped) {
  EXPECT_EQ(Bignum::from_hex("000001").to_hex(), "1");
  EXPECT_EQ(Bignum::from_hex("0000").to_hex(), "0");
}

TEST(Bignum, HexRejectsGarbage) {
  EXPECT_THROW(Bignum::from_hex("xyz"), std::invalid_argument);
}

TEST(Bignum, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes{0x01, 0x02, 0x03, 0x04, 0x05,
                                        0x06, 0x07, 0x08, 0x09};
  const Bignum v = Bignum::from_bytes_be(bytes);
  EXPECT_EQ(v.to_bytes_be(9), bytes);
}

TEST(Bignum, BytesWithLeadingZeros) {
  const std::vector<std::uint8_t> bytes{0x00, 0x00, 0xff};
  const Bignum v = Bignum::from_bytes_be(bytes);
  EXPECT_EQ(v.to_u64(), 0xffu);
  EXPECT_EQ(v.to_bytes_be(3), bytes);
}

TEST(Bignum, ToBytesThrowsWhenTooSmall) {
  const Bignum v = Bignum::from_hex("112233");
  EXPECT_THROW(v.to_bytes_be(2), std::length_error);
}

TEST(Bignum, BitLength) {
  EXPECT_EQ(Bignum(1).bit_length(), 1u);
  EXPECT_EQ(Bignum(255).bit_length(), 8u);
  EXPECT_EQ(Bignum(256).bit_length(), 9u);
  EXPECT_EQ(Bignum::from_hex("1" + std::string(32, '0')).bit_length(), 129u);
}

TEST(Bignum, BitAccess) {
  const Bignum v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(64));
  EXPECT_FALSE(v.bit(1000));
}

TEST(Bignum, Comparisons) {
  const Bignum a(5), b(9);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(Bignum::from_hex("10000000000000000") > Bignum(~0ULL));
}

TEST(Bignum, AddCarryPropagation) {
  const Bignum max64(~0ULL);
  const Bignum sum = max64.add(Bignum(1));
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(Bignum, AddZeroIdentity) {
  const Bignum a = Bignum::from_hex("abc123");
  EXPECT_EQ(a.add(Bignum()).to_hex(), "abc123");
}

TEST(Bignum, SubBasic) {
  EXPECT_EQ(Bignum(100).sub(Bignum(58)).to_u64(), 42u);
}

TEST(Bignum, SubBorrowAcrossLimbs) {
  const Bignum big = Bignum::from_hex("10000000000000000");
  EXPECT_EQ(big.sub(Bignum(1)).to_hex(), "ffffffffffffffff");
}

TEST(Bignum, SubUnderflowThrows) {
  EXPECT_THROW(Bignum(1).sub(Bignum(2)), std::underflow_error);
}

TEST(Bignum, SubSelfIsZero) {
  const Bignum a = Bignum::from_hex("ffffffffffffffffffffffff");
  EXPECT_TRUE(a.sub(a).is_zero());
}

TEST(Bignum, MulBasic) {
  EXPECT_EQ(Bignum(6).mul(Bignum(7)).to_u64(), 42u);
}

TEST(Bignum, MulByZero) {
  EXPECT_TRUE(Bignum::from_hex("abcdef").mul(Bignum()).is_zero());
}

TEST(Bignum, MulWideProduct) {
  const Bignum a(~0ULL);
  EXPECT_EQ(a.mul(a).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(Bignum, ShiftRoundTrip) {
  const Bignum a = Bignum::from_hex("123456789abcdef");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ(a.shl(s).shr(s), a) << "shift=" << s;
  }
}

TEST(Bignum, ShlMultipliesByPowerOfTwo) {
  EXPECT_EQ(Bignum(3).shl(4).to_u64(), 48u);
}

TEST(Bignum, ShrDropsLowBits) {
  EXPECT_EQ(Bignum(0xff).shr(4).to_u64(), 0xfu);
  EXPECT_TRUE(Bignum(1).shr(1).is_zero());
  EXPECT_TRUE(Bignum(5).shr(200).is_zero());
}

TEST(Bignum, DivModSmall) {
  const DivMod r = Bignum(17).divmod(Bignum(5));
  EXPECT_EQ(r.quotient.to_u64(), 3u);
  EXPECT_EQ(r.remainder.to_u64(), 2u);
}

TEST(Bignum, DivModByLargerDivisor) {
  const DivMod r = Bignum(5).divmod(Bignum(17));
  EXPECT_TRUE(r.quotient.is_zero());
  EXPECT_EQ(r.remainder.to_u64(), 5u);
}

TEST(Bignum, DivModByZeroThrows) {
  EXPECT_THROW(Bignum(5).divmod(Bignum()), std::domain_error);
}

TEST(Bignum, DivModExact) {
  const Bignum a = Bignum::from_hex("100000000000000000000");  // divisible by 16
  const DivMod r = a.divmod(Bignum(16));
  EXPECT_TRUE(r.remainder.is_zero());
  EXPECT_EQ(r.quotient.to_hex(), "10000000000000000000");
}

// Property: for random a, b the identity a == q*b + r with 0 <= r < b holds.
TEST(Bignum, DivModIdentityRandomized) {
  util::Rng rng(1234);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t abits = 1 + rng.below(512);
    const std::size_t bbits = 1 + rng.below(320);
    const Bignum a = Bignum::random_bits(rng, abits);
    const Bignum b = Bignum::random_bits(rng, bbits);
    const DivMod r = a.divmod(b);
    EXPECT_LT(r.remainder.cmp(b), 0);
    EXPECT_EQ(r.quotient.mul(b).add(r.remainder), a)
        << "a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

// Knuth-D stress: divisors crafted to trigger the qhat correction paths
// (top limb just below 2^64, repeated max limbs in the dividend).
TEST(Bignum, DivModQhatCorrectionCases) {
  const Bignum a = Bignum::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffff");
  const Bignum b = Bignum::from_hex("ffffffffffffffff0000000000000001");
  const DivMod r = a.divmod(b);
  EXPECT_EQ(r.quotient.mul(b).add(r.remainder), a);
  EXPECT_LT(r.remainder.cmp(b), 0);

  const Bignum c = Bignum::from_hex("80000000000000000000000000000000");
  const Bignum d = Bignum::from_hex("80000000000000000000000000000001");
  const DivMod r2 = c.divmod(d);
  EXPECT_TRUE(r2.quotient.is_zero());
  EXPECT_EQ(r2.remainder, c);
}

TEST(Bignum, ModAgreesWithDivMod) {
  util::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = Bignum::random_bits(rng, 256);
    const Bignum m = Bignum::random_bits(rng, 128);
    EXPECT_EQ(a.mod(m), a.divmod(m).remainder);
  }
}

TEST(Bignum, ModMulMatchesU64) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.below(1u << 31);
    const std::uint64_t b = rng.below(1u << 31);
    const std::uint64_t m = 1 + rng.below((1u << 31) - 1);
    EXPECT_EQ(Bignum::modmul(Bignum(a), Bignum(b), Bignum(m)).to_u64(),
              (a * b) % m);
  }
}

TEST(Bignum, ModExpSmallCases) {
  // 3^4 mod 5 = 81 mod 5 = 1
  EXPECT_EQ(Bignum::modexp(Bignum(3), Bignum(4), Bignum(5)).to_u64(), 1u);
  // x^0 = 1
  EXPECT_EQ(Bignum::modexp(Bignum(10), Bignum(), Bignum(7)).to_u64(), 1u);
  // mod 1 => 0
  EXPECT_TRUE(Bignum::modexp(Bignum(10), Bignum(5), Bignum(1)).is_zero());
}

TEST(Bignum, ModExpMatchesIteratedMultiplication) {
  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const Bignum base = Bignum::random_bits(rng, 96);
    const Bignum m = Bignum::random_bits(rng, 80);
    const std::uint64_t e = rng.below(40);
    Bignum expected(1);
    for (std::uint64_t k = 0; k < e; ++k)
      expected = Bignum::modmul(expected, base, m);
    EXPECT_EQ(Bignum::modexp(base, Bignum(e), m), expected) << "e=" << e;
  }
}

TEST(Bignum, ModExpFermatLittleTheorem) {
  // p prime, gcd(a,p)=1 => a^(p-1) = 1 mod p.
  const Bignum p(1000000007ULL);
  util::Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::random_below(rng, p.sub(Bignum(2))).add(Bignum(2));
    EXPECT_TRUE(Bignum::modexp(a, p.sub(Bignum(1)), p).is_one());
  }
}

TEST(Bignum, GcdBasics) {
  EXPECT_EQ(Bignum::gcd(Bignum(12), Bignum(18)).to_u64(), 6u);
  EXPECT_EQ(Bignum::gcd(Bignum(7), Bignum(13)).to_u64(), 1u);
  EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)).to_u64(), 5u);
  EXPECT_EQ(Bignum::gcd(Bignum(5), Bignum(0)).to_u64(), 5u);
}

TEST(Bignum, ModInvBasic) {
  // 3 * 4 = 12 = 1 mod 11.
  EXPECT_EQ(Bignum::modinv(Bignum(3), Bignum(11)).to_u64(), 4u);
}

TEST(Bignum, ModInvRandomized) {
  util::Rng rng(17);
  const Bignum p(1000000007ULL);  // prime modulus: everything is invertible
  for (int i = 0; i < 100; ++i) {
    const Bignum a = Bignum::random_below(rng, p.sub(Bignum(1))).add(Bignum(1));
    const Bignum inv = Bignum::modinv(a, p);
    EXPECT_TRUE(Bignum::modmul(a, inv, p).is_one()) << a.to_hex();
  }
}

TEST(Bignum, ModInvLargeModulus) {
  util::Rng rng(19);
  const Bignum m = Bignum::random_bits(rng, 512).add(Bignum(1));
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::random_below(rng, m);
    if (!Bignum::gcd(a, m).is_one()) continue;
    EXPECT_TRUE(Bignum::modmul(a, Bignum::modinv(a, m), m).is_one());
  }
}

TEST(Bignum, ModInvNonInvertibleThrows) {
  EXPECT_THROW(Bignum::modinv(Bignum(4), Bignum(8)), std::domain_error);
  EXPECT_THROW(Bignum::modinv(Bignum(0), Bignum(7)), std::domain_error);
}

TEST(Bignum, RandomBelowRespectsBound) {
  util::Rng rng(23);
  const Bignum bound = Bignum::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i)
    EXPECT_LT(Bignum::random_below(rng, bound).cmp(bound), 0);
}

TEST(Bignum, RandomBelowZeroBoundThrows) {
  util::Rng rng(27);
  EXPECT_THROW(Bignum::random_below(rng, Bignum()), std::invalid_argument);
}

TEST(Bignum, RandomBitsExactLength) {
  util::Rng rng(29);
  for (std::size_t bits : {1u, 8u, 63u, 64u, 65u, 255u, 256u, 513u}) {
    EXPECT_EQ(Bignum::random_bits(rng, bits).bit_length(), bits);
  }
}

}  // namespace
}  // namespace eyw::crypto
