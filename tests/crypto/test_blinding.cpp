#include "crypto/blinding.hpp"

#include <gtest/gtest.h>

namespace eyw::crypto {
namespace {

struct Roster {
  DhGroup group;
  std::vector<DhKeyPair> keys;
  std::vector<Bignum> publics;
  std::vector<BlindingParticipant> participants;
};

Roster make_roster(std::size_t n, std::uint64_t seed) {
  static const DhGroup group = [] {
    util::Rng rng(5150);
    return DhGroup::generate(rng, 128);
  }();
  Roster r{.group = group, .keys = {}, .publics = {}, .participants = {}};
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    r.keys.push_back(dh_keygen(group, rng));
    r.publics.push_back(r.keys.back().public_key);
  }
  for (std::size_t i = 0; i < n; ++i)
    r.participants.emplace_back(group, i, r.keys[i],
                                std::span<const Bignum>(r.publics));
  return r;
}

TEST(Blinding, SharesOfZeroCancel) {
  const Roster r = make_roster(5, 1);
  const std::size_t cells = 16;
  std::vector<BlindCell> sum(cells, 0);
  for (const auto& p : r.participants) {
    const auto b = p.blinding_vector(cells, /*round=*/0);
    for (std::size_t m = 0; m < cells; ++m) sum[m] += b[m];
  }
  for (std::size_t m = 0; m < cells; ++m) EXPECT_EQ(sum[m], 0u) << "cell " << m;
}

TEST(Blinding, TwoParticipantsCancel) {
  const Roster r = make_roster(2, 2);
  const auto b0 = r.participants[0].blinding_vector(8, 3);
  const auto b1 = r.participants[1].blinding_vector(8, 3);
  for (std::size_t m = 0; m < 8; ++m)
    EXPECT_EQ(static_cast<BlindCell>(b0[m] + b1[m]), 0u);
}

TEST(Blinding, AggregationRecoversPlaintextSum) {
  const Roster r = make_roster(4, 3);
  const std::size_t cells = 10;
  std::vector<std::vector<BlindCell>> plain(4);
  std::vector<std::vector<BlindCell>> reports;
  for (std::size_t i = 0; i < 4; ++i) {
    plain[i].resize(cells);
    for (std::size_t m = 0; m < cells; ++m)
      plain[i][m] = static_cast<BlindCell>(i * 100 + m);
    reports.push_back(r.participants[i].blind(plain[i], /*round=*/7));
  }
  const auto agg = aggregate_blinded(reports);
  for (std::size_t m = 0; m < cells; ++m) {
    BlindCell expected = 0;
    for (std::size_t i = 0; i < 4; ++i) expected += plain[i][m];
    EXPECT_EQ(agg[m], expected);
  }
}

TEST(Blinding, SingleBlindedReportLooksRandom) {
  // A lone blinded report must not equal the plaintext (overwhelming prob.).
  const Roster r = make_roster(3, 4);
  const std::vector<BlindCell> plain(32, 5);
  const auto blinded = r.participants[0].blind(plain, 0);
  std::size_t equal = 0;
  for (std::size_t m = 0; m < plain.size(); ++m)
    if (blinded[m] == plain[m]) ++equal;
  EXPECT_LT(equal, 3u);
}

TEST(Blinding, RoundsAreIndependent) {
  const Roster r = make_roster(3, 5);
  const auto b0 = r.participants[0].blinding_vector(8, /*round=*/1);
  const auto b1 = r.participants[0].blinding_vector(8, /*round=*/2);
  EXPECT_NE(b0, b1);
}

TEST(Blinding, MissingClientLeavesResidue) {
  const Roster r = make_roster(5, 6);
  const std::size_t cells = 8;
  // Client 2 never reports.
  std::vector<std::vector<BlindCell>> reports;
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    reports.push_back(
        r.participants[i].blind(std::vector<BlindCell>(cells, 1), 0));
  }
  auto agg = aggregate_blinded(reports);
  // Aggregate without adjustment is garbage: != 4 in at least one cell.
  bool any_wrong = false;
  for (std::size_t m = 0; m < cells; ++m) any_wrong |= agg[m] != 4u;
  EXPECT_TRUE(any_wrong);
}

TEST(Blinding, AdjustmentRoundCancelsMissingClients) {
  const Roster r = make_roster(6, 7);
  const std::size_t cells = 12;
  const std::vector<std::size_t> missing{1, 4};
  std::vector<std::vector<BlindCell>> reports;
  std::vector<std::size_t> reporters;
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 1 || i == 4) continue;
    reporters.push_back(i);
    reports.push_back(
        r.participants[i].blind(std::vector<BlindCell>(cells, 2), 9));
  }
  auto agg = aggregate_blinded(reports);
  for (std::size_t i : reporters) {
    const auto adj = r.participants[i].adjustment_for_missing(
        cells, 9, std::span<const std::size_t>(missing));
    apply_adjustment(agg, adj);
  }
  for (std::size_t m = 0; m < cells; ++m)
    EXPECT_EQ(agg[m], 8u) << "cell " << m;  // 4 reporters x 2
}

TEST(Blinding, AdjustmentRejectsSelf) {
  const Roster r = make_roster(3, 8);
  const std::vector<std::size_t> missing{0};
  EXPECT_THROW(r.participants[0].adjustment_for_missing(4, 0, missing),
               std::invalid_argument);
}

TEST(Blinding, AdjustmentRejectsUnknownIndex) {
  const Roster r = make_roster(3, 9);
  const std::vector<std::size_t> missing{7};
  EXPECT_THROW(r.participants[0].adjustment_for_missing(4, 0, missing),
               std::invalid_argument);
}

TEST(Blinding, ConstructorValidatesRoster) {
  const Roster r = make_roster(3, 10);
  EXPECT_THROW(BlindingParticipant(r.group, 5, r.keys[0],
                                   std::span<const Bignum>(r.publics)),
               std::invalid_argument);
  // Index/key mismatch.
  EXPECT_THROW(BlindingParticipant(r.group, 1, r.keys[0],
                                   std::span<const Bignum>(r.publics)),
               std::invalid_argument);
}

TEST(Blinding, AggregateRejectsMismatchedSizes) {
  std::vector<std::vector<BlindCell>> reports{{1, 2}, {1, 2, 3}};
  EXPECT_THROW(aggregate_blinded(reports), std::invalid_argument);
}

TEST(Blinding, RosterBytesScalesQuadratically) {
  const DhGroup g = DhGroup::rfc3526_2048();
  EXPECT_EQ(roster_bytes(g, 0), 0u);
  EXPECT_EQ(roster_bytes(g, 1), 256u);
  // n elements up + n(n-1) down.
  EXPECT_EQ(roster_bytes(g, 10), (10 + 90) * 256u);
}

}  // namespace
}  // namespace eyw::crypto
