// Differential agreement suite: the portable u128 kernel is the oracle,
// and the BMI2/ADX kernel must be bit-identical to it on every input —
// every limb count the dispatch table covers (1..33), the rolled fallback
// beyond it, aliased outputs, and the edge exponents of the ladder. On
// hardware without ADX the suite skips cleanly (the portable kernel is
// then the only backend and has nothing to disagree with); the
// batch/fixed-base agreement tests at the bottom run everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/mont_kernel.hpp"
#include "crypto/montgomery.hpp"
#include "util/rng.hpp"

namespace eyw::crypto {
namespace {

using u64 = std::uint64_t;

/// Random odd modulus with EXACTLY `limbs` limbs (top limb nonzero).
Bignum random_odd_modulus(util::Rng& rng, std::size_t limbs) {
  for (;;) {
    Bignum n = Bignum::random_bits(rng, limbs * 64);
    auto v = std::vector<u64>(n.limbs().begin(), n.limbs().end());
    v.resize(limbs, 0);
    v[limbs - 1] |= u64{1} << 63;  // pin the width
    v[0] |= 1;                     // odd
    Bignum fixed = Bignum::from_limbs(std::move(v));
    if (!fixed.is_one()) return fixed;
  }
}

/// Limbs of a random residue < n, padded to n's limb count.
std::vector<u64> random_residue(util::Rng& rng, const Bignum& n,
                                std::size_t limbs) {
  const Bignum r = Bignum::random_below(rng, n);
  std::vector<u64> v(r.limbs().begin(), r.limbs().end());
  v.resize(limbs, 0);
  return v;
}

u64 neg_inv64(u64 n0) {
  u64 x = n0;
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  return ~x + 1;
}

class MontKernelDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    adx_ = adx_mont_kernel();
    if (adx_ == nullptr)
      GTEST_SKIP() << "ADX kernel unavailable (CPU or toolchain); "
                      "portable kernel is the only backend";
  }
  const MontKernel* adx_ = nullptr;
};

TEST_F(MontKernelDifferential, MulAgreesAtEveryFixedLimbCount) {
  util::Rng rng(0x6d6b31);
  const MontKernel& ref = portable_mont_kernel();
  for (std::size_t L = 1; L <= 33; ++L) {
    const Bignum n = random_odd_modulus(rng, L);
    const auto nl = std::vector<u64>(n.limbs().begin(), n.limbs().end());
    const u64 n0inv = neg_inv64(nl[0]);
    std::vector<u64> scratch(mont_kernel_scratch_limbs(L));
    for (int iter = 0; iter < 8; ++iter) {
      const auto a = random_residue(rng, n, L);
      const auto b = random_residue(rng, n, L);
      std::vector<u64> out_ref(L), out_adx(L);
      ref.mul(a.data(), b.data(), out_ref.data(), scratch.data(), nl.data(),
              L, n0inv);
      adx_->mul(a.data(), b.data(), out_adx.data(), scratch.data(),
                nl.data(), L, n0inv);
      ASSERT_EQ(out_ref, out_adx) << "mul mismatch at L=" << L;
    }
  }
}

TEST_F(MontKernelDifferential, SqrAgreesAtEveryFixedLimbCount) {
  util::Rng rng(0x6d6b32);
  const MontKernel& ref = portable_mont_kernel();
  for (std::size_t L = 1; L <= 33; ++L) {
    const Bignum n = random_odd_modulus(rng, L);
    const auto nl = std::vector<u64>(n.limbs().begin(), n.limbs().end());
    const u64 n0inv = neg_inv64(nl[0]);
    std::vector<u64> scratch(mont_kernel_scratch_limbs(L));
    for (int iter = 0; iter < 8; ++iter) {
      const auto a = random_residue(rng, n, L);
      std::vector<u64> out_ref(L), out_adx(L);
      ref.sqr(a.data(), out_ref.data(), scratch.data(), nl.data(), L, n0inv);
      adx_->sqr(a.data(), out_adx.data(), scratch.data(), nl.data(), L,
                n0inv);
      ASSERT_EQ(out_ref, out_adx) << "sqr mismatch at L=" << L;
      // Squaring must equal the general multiply with both operands equal.
      std::vector<u64> out_mul(L);
      adx_->mul(a.data(), a.data(), out_mul.data(), scratch.data(),
                nl.data(), L, n0inv);
      ASSERT_EQ(out_mul, out_adx) << "sqr != mul(a,a) at L=" << L;
    }
  }
}

TEST_F(MontKernelDifferential, RolledFallbackBeyondFixedLimbs) {
  // L > 33 leaves the dispatch table and runs the rolled jrcxz-loop rows.
  util::Rng rng(0x6d6b33);
  const MontKernel& ref = portable_mont_kernel();
  for (const std::size_t L : {34, 40, 48}) {
    const Bignum n = random_odd_modulus(rng, L);
    const auto nl = std::vector<u64>(n.limbs().begin(), n.limbs().end());
    const u64 n0inv = neg_inv64(nl[0]);
    std::vector<u64> scratch(mont_kernel_scratch_limbs(L));
    const auto a = random_residue(rng, n, L);
    const auto b = random_residue(rng, n, L);
    std::vector<u64> out_ref(L), out_adx(L);
    ref.mul(a.data(), b.data(), out_ref.data(), scratch.data(), nl.data(),
            L, n0inv);
    adx_->mul(a.data(), b.data(), out_adx.data(), scratch.data(), nl.data(),
              L, n0inv);
    EXPECT_EQ(out_ref, out_adx) << "fallback mul mismatch at L=" << L;
    ref.sqr(a.data(), out_ref.data(), scratch.data(), nl.data(), L, n0inv);
    adx_->sqr(a.data(), out_adx.data(), scratch.data(), nl.data(), L,
              n0inv);
    EXPECT_EQ(out_ref, out_adx) << "fallback sqr mismatch at L=" << L;
  }
}

TEST_F(MontKernelDifferential, OutputMayAliasEitherInput) {
  util::Rng rng(0x6d6b34);
  const MontKernel& ref = portable_mont_kernel();
  for (const std::size_t L : {1, 2, 7, 16, 32, 33, 40}) {
    const Bignum n = random_odd_modulus(rng, L);
    const auto nl = std::vector<u64>(n.limbs().begin(), n.limbs().end());
    const u64 n0inv = neg_inv64(nl[0]);
    std::vector<u64> scratch(mont_kernel_scratch_limbs(L));
    const auto a = random_residue(rng, n, L);
    const auto b = random_residue(rng, n, L);
    std::vector<u64> expected(L);
    ref.mul(a.data(), b.data(), expected.data(), scratch.data(), nl.data(),
            L, n0inv);
    // out == a
    std::vector<u64> buf = a;
    adx_->mul(buf.data(), b.data(), buf.data(), scratch.data(), nl.data(),
              L, n0inv);
    EXPECT_EQ(expected, buf) << "out==a aliasing at L=" << L;
    // out == b
    buf = b;
    adx_->mul(a.data(), buf.data(), buf.data(), scratch.data(), nl.data(),
              L, n0inv);
    EXPECT_EQ(expected, buf) << "out==b aliasing at L=" << L;
    // sqr in place
    ref.sqr(a.data(), expected.data(), scratch.data(), nl.data(), L, n0inv);
    buf = a;
    adx_->sqr(buf.data(), buf.data(), scratch.data(), nl.data(), L, n0inv);
    EXPECT_EQ(expected, buf) << "sqr out==a aliasing at L=" << L;
  }
}

TEST_F(MontKernelDifferential, ModexpEdgeExponents) {
  util::Rng rng(0x6d6b35);
  for (const std::size_t bits : {64, 256, 1024}) {
    const Bignum n = random_odd_modulus(rng, bits / 64);
    const Montgomery portable(n, portable_mont_kernel());
    const Montgomery adx(n, *adx_);
    const Bignum base = Bignum::random_below(rng, n);
    // x^0 = 1, x^1 = x, and the all-ones exponent (every window maximal).
    const Bignum all_ones = Bignum(1).shl(bits).sub(Bignum(1));
    for (const Bignum& e : {Bignum(0), Bignum(1), all_ones}) {
      EXPECT_EQ(portable.modexp(base, e), adx.modexp(base, e))
          << "modexp mismatch at " << bits << " bits";
    }
  }
}

TEST_F(MontKernelDifferential, FullPipelineAgreement) {
  // End to end through the Montgomery wrapper: same modulus, two pinned
  // contexts, random exponentiations must match bit for bit.
  util::Rng rng(0x6d6b36);
  const Bignum n = random_odd_modulus(rng, 16);  // 1024-bit
  const Montgomery portable(n, portable_mont_kernel());
  const Montgomery adx(n, *adx_);
  EXPECT_STREQ(portable.kernel_name(), "portable");
  EXPECT_STREQ(adx.kernel_name(), "adx");
  for (int i = 0; i < 4; ++i) {
    const Bignum base = Bignum::random_below(rng, n);
    const Bignum exp = Bignum::random_bits(rng, 1024);
    EXPECT_EQ(portable.modexp(base, exp), adx.modexp(base, exp));
    EXPECT_EQ(portable.modmul(base, exp.mod(n)), adx.modmul(base, exp.mod(n)));
  }
}

// ------------------------------------------------------------------------
// Batch and fixed-base paths: value agreement with the sequential ladder.
// These run on whatever kernel is active, portable included.

TEST(ModexpBatch, MatchesSequentialModexp) {
  util::Rng rng(0x6d6b37);
  const Bignum n = random_odd_modulus(rng, 8);  // 512-bit
  const Montgomery mont(n);
  std::vector<Bignum> bases, exps;
  for (int i = 0; i < 7; ++i) {
    bases.push_back(Bignum::random_below(rng, n));
    // Mixed widths: exercises lanes finishing at different times.
    exps.push_back(Bignum::random_bits(rng, 32 + 96 * i));
  }
  const auto batch = mont.modexp_batch(bases, exps);
  ASSERT_EQ(batch.size(), bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i)
    EXPECT_EQ(batch[i], mont.modexp(bases[i], exps[i])) << "lane " << i;
}

TEST(ModexpBatch, SharedExponentBroadcast) {
  util::Rng rng(0x6d6b38);
  const Bignum n = random_odd_modulus(rng, 8);
  const Montgomery mont(n);
  const Bignum e(65537);
  std::vector<Bignum> bases;
  for (int i = 0; i < 5; ++i) bases.push_back(Bignum::random_below(rng, n));
  const auto batch =
      mont.modexp_batch(bases, std::span<const Bignum>(&e, 1));
  for (std::size_t i = 0; i < bases.size(); ++i)
    EXPECT_EQ(batch[i], mont.modexp(bases[i], e));
}

TEST(ModexpBatch, ZeroAndOneExponentLanes) {
  util::Rng rng(0x6d6b39);
  const Bignum n = random_odd_modulus(rng, 4);
  const Montgomery mont(n);
  const std::vector<Bignum> bases = {Bignum::random_below(rng, n),
                                     Bignum::random_below(rng, n),
                                     Bignum::random_below(rng, n)};
  const std::vector<Bignum> exps = {Bignum(0), Bignum(1),
                                    Bignum::random_bits(rng, 256)};
  const auto batch = mont.modexp_batch(bases, exps);
  EXPECT_EQ(batch[0], Bignum(1));
  EXPECT_EQ(batch[1], bases[1]);
  EXPECT_EQ(batch[2], mont.modexp(bases[2], exps[2]));
}

TEST(MontFixedBaseTest, MatchesPlainModexp) {
  util::Rng rng(0x6d6b3a);
  const Bignum n = random_odd_modulus(rng, 8);
  const Montgomery mont(n);
  const Bignum g = Bignum::random_below(rng, n);
  const MontFixedBase fixed(mont, g);
  EXPECT_EQ(fixed.base(), g);
  for (const std::size_t bits : {1, 13, 64, 200, 512}) {
    const Bignum e = Bignum::random_bits(rng, bits);
    EXPECT_EQ(fixed.modexp(e), mont.modexp(g, e)) << bits << "-bit exponent";
  }
  EXPECT_EQ(fixed.modexp(Bignum(0)), Bignum(1));
  // Wider than the modulus: falls back to the plain ladder.
  const Bignum wide = Bignum::random_bits(rng, 700);
  EXPECT_EQ(fixed.modexp(wide), mont.modexp(g, wide));
}

TEST(SharedMontgomeryCache, ReturnsSameContextForSameModulus) {
  util::Rng rng(0x6d6b3b);
  const Bignum n = random_odd_modulus(rng, 4);
  const auto a = Montgomery::shared_for(n);
  const auto b = Montgomery::shared_for(n);
  EXPECT_EQ(a.get(), b.get());
  const Bignum m = random_odd_modulus(rng, 4);
  EXPECT_NE(Montgomery::shared_for(m).get(), a.get());
}

}  // namespace
}  // namespace eyw::crypto
