// Differential suite for the SHA-256 compression kernels: the SHA-NI
// backend must agree bit-for-bit with the portable scalar compression on
// single blocks, multi-block chains, and through the public digest /
// counter-mode-expansion APIs. Skips cleanly when SHA-NI is not compiled
// in or the CPU lacks it — the portable compression is the oracle.
#include "crypto/sha256_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace eyw::crypto {
namespace {

class Sha256KernelDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    shani_ = shani_sha256_kernel();
    if (shani_ == nullptr)
      GTEST_SKIP() << "SHA-NI kernel unavailable (not compiled in or CPU "
                      "lacks SHA extensions) — portable compression is the "
                      "only backend, nothing to differentiate";
  }

  const Sha256Kernel* shani_ = nullptr;
  const Sha256Kernel& portable_ = portable_sha256_kernel();
};

TEST_F(Sha256KernelDifferential, SingleBlockAgreesOnRandomInputs) {
  util::Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint8_t block[64];
    for (std::uint8_t& b : block) b = static_cast<std::uint8_t>(rng.next());
    std::uint32_t want[8], got[8];
    for (int i = 0; i < 8; ++i)
      want[i] = got[i] = static_cast<std::uint32_t>(rng.next());
    portable_.compress(want, block, 1);
    shani_->compress(got, block, 1);
    EXPECT_EQ(0, std::memcmp(want, got, sizeof(want))) << "trial " << trial;
  }
}

TEST_F(Sha256KernelDifferential, MultiBlockChainingAgrees) {
  util::Rng rng(42);
  // Chained compressions over every count a bulk update() might issue,
  // including the empty call.
  for (const std::size_t blocks : {0u, 1u, 2u, 3u, 7u, 16u, 65u}) {
    std::vector<std::uint8_t> data(blocks * 64);
    for (std::uint8_t& b : data) b = static_cast<std::uint8_t>(rng.next());
    std::uint32_t want[8], got[8];
    for (int i = 0; i < 8; ++i)
      want[i] = got[i] = static_cast<std::uint32_t>(rng.next());
    portable_.compress(want, data.data(), blocks);
    shani_->compress(got, data.data(), blocks);
    EXPECT_EQ(0, std::memcmp(want, got, sizeof(want))) << blocks << " blocks";
  }
}

TEST_F(Sha256KernelDifferential, UnalignedBlockPointersAgree) {
  util::Rng rng(43);
  std::vector<std::uint8_t> backing(64 * 3 + 16);
  for (std::uint8_t& b : backing) b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t off = 0; off < 16; ++off) {
    std::uint32_t want[8], got[8];
    for (int i = 0; i < 8; ++i)
      want[i] = got[i] = static_cast<std::uint32_t>(rng.next());
    portable_.compress(want, backing.data() + off, 3);
    shani_->compress(got, backing.data() + off, 3);
    EXPECT_EQ(0, std::memcmp(want, got, sizeof(want))) << "offset " << off;
  }
}

// The known-answer vectors guard the glue above the kernel (padding,
// digest byte order) — whichever backend is active must still be SHA-256.
TEST(Sha256KernelGlue, FipsVectorsHoldOnActiveKernel) {
  const Digest empty = sha256(std::string_view(""));
  const char* want_empty =
      "\xe3\xb0\xc4\x42\x98\xfc\x1c\x14\x9a\xfb\xf4\xc8\x99\x6f\xb9\x24"
      "\x27\xae\x41\xe4\x64\x9b\x93\x4c\xa4\x95\x99\x1b\x78\x52\xb8\x55";
  EXPECT_EQ(0, std::memcmp(empty.data(), want_empty, 32));

  const Digest abc = sha256(std::string_view("abc"));
  const char* want_abc =
      "\xba\x78\x16\xbf\x8f\x01\xcf\xea\x41\x41\x40\xde\x5d\xae\x22\x23"
      "\xb0\x03\x61\xa3\x96\x17\x7a\x9c\xb4\x10\xff\x61\xf2\x00\x15\xad";
  EXPECT_EQ(0, std::memcmp(abc.data(), want_abc, 32));

  // Two-block message (56 bytes forces the length into a second block).
  const Digest two = sha256(std::string_view(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  const char* want_two =
      "\x24\x8d\x6a\x61\xd2\x06\x38\xb8\xe5\xc0\x26\x93\x0c\x3e\x60\x39"
      "\xa3\x3c\xe4\x59\x64\xff\x21\x67\xf6\xec\xed\xd4\x19\xdb\x06\xc1";
  EXPECT_EQ(0, std::memcmp(two.data(), want_two, 32));
}

// The expansion fast path (prepared padded block, raw compressions from
// the IV) must produce exactly the incremental-API stream for every
// length split, including non-multiple-of-32 tails.
TEST(Sha256KernelGlue, ExpandFastPathMatchesIncrementalReference) {
  util::Rng rng(44);
  std::array<std::uint8_t, 32> seed;
  for (std::uint8_t& b : seed) b = static_cast<std::uint8_t>(rng.next());
  for (const std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u, 4096u}) {
    std::vector<std::uint8_t> fast(len);
    sha256_expand_into(seed, fast);
    std::vector<std::uint8_t> want(len);
    std::uint64_t counter = 0;
    std::size_t off = 0;
    while (off < want.size()) {
      Sha256 h;
      h.update(std::span<const std::uint8_t>(seed.data(), seed.size()));
      h.update_u64(counter++);
      const Digest d = h.finish();
      const std::size_t take = std::min<std::size_t>(32, want.size() - off);
      std::memcpy(want.data() + off, d.data(), take);
      off += take;
    }
    EXPECT_EQ(fast, want) << "len " << len;
  }
}

TEST(Sha256KernelSelection, ActiveKernelRespectsEnvOverride) {
  const Sha256Kernel& active = active_sha256_kernel();
  const char* env = ::getenv("EYW_SHA256_KERNEL");
  if (env != nullptr && std::string_view(env) == "portable")
    EXPECT_STREQ(active.name, "portable");
  else
    EXPECT_TRUE(std::string_view(active.name) == "portable" ||
                std::string_view(active.name) == "shani");
  if (std::string_view(active.name) == "shani")
    EXPECT_NE(shani_sha256_kernel(), nullptr);
}

}  // namespace
}  // namespace eyw::crypto
