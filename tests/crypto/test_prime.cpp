#include "crypto/prime.hpp"

#include <gtest/gtest.h>

namespace eyw::crypto {
namespace {

TEST(Prime, SmallPrimesRecognized) {
  util::Rng rng(1);
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 97u, 541u, 997u})
    EXPECT_TRUE(is_probable_prime(Bignum(p), rng)) << p;
}

TEST(Prime, SmallCompositesRejected) {
  util::Rng rng(2);
  for (std::uint64_t c : {0u, 1u, 4u, 6u, 9u, 15u, 21u, 100u, 561u, 991u * 3u})
    EXPECT_FALSE(is_probable_prime(Bignum(c), rng)) << c;
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Classic Fermat pseudoprimes that Miller-Rabin must still reject.
  util::Rng rng(3);
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u})
    EXPECT_FALSE(is_probable_prime(Bignum(c), rng)) << c;
}

TEST(Prime, KnownLargePrime) {
  util::Rng rng(4);
  // 2^89 - 1 is a Mersenne prime.
  const Bignum m89 = Bignum(1).shl(89).sub(Bignum(1));
  EXPECT_TRUE(is_probable_prime(m89, rng));
  // 2^90 - 1 is composite.
  const Bignum m90 = Bignum(1).shl(90).sub(Bignum(1));
  EXPECT_FALSE(is_probable_prime(m90, rng));
}

TEST(Prime, EvenNumbersRejectedFast) {
  util::Rng rng(5);
  const Bignum big_even = Bignum::from_hex("123456789abcdef0");
  EXPECT_FALSE(is_probable_prime(big_even, rng));
}

TEST(Prime, GeneratedPrimeHasRequestedBits) {
  util::Rng rng(6);
  for (std::size_t bits : {16u, 32u, 64u, 128u}) {
    const Bignum p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, GenerateRejectsTinyRequest) {
  util::Rng rng(7);
  EXPECT_THROW(generate_prime(rng, 4), std::invalid_argument);
}

TEST(Prime, RsaPrimeCoprimeToE) {
  util::Rng rng(8);
  const Bignum e(65537);
  const Bignum p = generate_rsa_prime(rng, 96, e);
  EXPECT_TRUE(Bignum::gcd(p.sub(Bignum(1)), e).is_one());
  EXPECT_TRUE(is_probable_prime(p, rng));
}

TEST(Prime, SafePrimeStructure) {
  util::Rng rng(9);
  const Bignum p = generate_safe_prime(rng, 64);
  EXPECT_TRUE(is_probable_prime(p, rng));
  const Bignum q = p.shr(1);  // (p-1)/2 since p is odd
  EXPECT_TRUE(is_probable_prime(q, rng));
  EXPECT_EQ(p.bit_length(), 64u);
}

TEST(Prime, DeterministicGivenSeed) {
  util::Rng a(42), b(42);
  EXPECT_EQ(generate_prime(a, 64), generate_prime(b, 64));
}

}  // namespace
}  // namespace eyw::crypto
