#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "client/extension.hpp"
#include "client/url_mapper.hpp"
#include "server/endpoint.hpp"

namespace eyw::client {
namespace {

const crypto::OprfServer& oprf_server() {
  static const crypto::OprfServer s = [] {
    util::Rng rng(31337);
    return crypto::OprfServer(rng, 256);
  }();
  return s;
}

TEST(HashUrlMapper, StableAndInRange) {
  HashUrlMapper m(1000);
  const auto a = m.map("https://x.test/ad");
  EXPECT_EQ(a, m.map("https://x.test/ad"));
  EXPECT_LT(a, 1000u);
  EXPECT_NE(a, m.map("https://x.test/other"));
}

TEST(HashUrlMapper, RejectsZeroSpace) {
  EXPECT_THROW(HashUrlMapper(0), std::invalid_argument);
}

TEST(OprfUrlMapper, CachesPerUniqueIdentity) {
  OprfUrlMapper m(oprf_server(), 5000, 1);
  const auto before = oprf_server().evaluations();
  const auto id1 = m.map("https://a.test");
  const auto id2 = m.map("https://a.test");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(oprf_server().evaluations(), before + 1);  // single evaluation
  EXPECT_EQ(m.cache_size(), 1u);
  (void)m.map("https://b.test");
  EXPECT_EQ(m.cache_size(), 2u);
  EXPECT_EQ(m.bytes_exchanged(), 2 * 2 * 32u);  // 2 evals x 2 x 32B elements
}

TEST(OprfUrlMapper, MapBatchMatchesRepeatedMapInOneRoundTrip) {
  // Same server, two mappers: one maps URL by URL, one ships the whole
  // batch. Ids must be identical; round trips must collapse to one.
  std::vector<std::string> urls;
  for (int i = 0; i < 8; ++i)
    urls.push_back("https://batch.test/" + std::to_string(i));
  urls.push_back(urls[0]);  // a duplicate costs nothing

  OprfUrlMapper one_by_one(oprf_server(), 5000, 4);
  std::vector<std::uint64_t> expected;
  for (const auto& url : urls) expected.push_back(one_by_one.map(url));
  EXPECT_EQ(one_by_one.transport_stats().round_trips(), 8u);  // per miss

  OprfUrlMapper batched(oprf_server(), 5000, 5);
  const auto ids = batched.map_batch(urls);
  EXPECT_EQ(ids, expected);
  EXPECT_EQ(batched.transport_stats().round_trips(), 1u);  // one for all
  EXPECT_EQ(batched.cache_size(), 8u);

  // A second batch over warm cache goes nowhere near the network.
  const auto again = batched.map_batch(urls);
  EXPECT_EQ(again, expected);
  EXPECT_EQ(batched.transport_stats().round_trips(), 1u);

  // A mixed batch pays exactly one more round trip for the new URLs.
  urls.push_back("https://batch.test/new");
  (void)batched.map_batch(urls);
  EXPECT_EQ(batched.transport_stats().round_trips(), 2u);
}

TEST(OprfUrlMapper, MapBatchEmptyIsFree) {
  OprfUrlMapper m(oprf_server(), 5000, 6);
  EXPECT_TRUE(m.map_batch(std::span<const std::string_view>{}).empty());
  EXPECT_EQ(m.transport_stats().round_trips(), 0u);
}

TEST(OprfUrlMapper, ExternalTransportAndFaults) {
  // Transport-first construction: the mapper speaks to an OprfEndpoint
  // through a caller-owned channel, and a dropped response surfaces as a
  // protocol error instead of a bogus id.
  eyw::server::OprfEndpoint endpoint(oprf_server());
  proto::LoopbackTransport net(
      [&](std::span<const std::uint8_t> f) { return endpoint.handle(f); });
  {
    OprfUrlMapper direct(oprf_server(), 5000, 7);
    OprfUrlMapper remote(net, oprf_server().public_key(), 5000, 8);
    EXPECT_EQ(remote.map("https://x.test/ad"), direct.map("https://x.test/ad"));
  }
  {
    proto::FaultInjectingTransport faulty(
        net, {.action = proto::FaultPlan::Action::kDropResponse, .nth = 0});
    OprfUrlMapper unlucky(faulty, oprf_server().public_key(), 5000, 9);
    EXPECT_THROW((void)unlucky.map("https://y.test/ad"), proto::ProtoError);
    // The failed evaluation cached nothing; a retry succeeds.
    EXPECT_EQ(unlucky.cache_size(), 0u);
    EXPECT_EQ(unlucky.map("https://y.test/ad"),
              OprfUrlMapper(oprf_server(), 5000, 10).map("https://y.test/ad"));
  }
}

TEST(OprfUrlMapper, AgreesAcrossClients) {
  // Two different extensions must map the same URL to the same ad id —
  // that is the whole point of the keyed mapping.
  OprfUrlMapper m1(oprf_server(), 5000, 2);
  OprfUrlMapper m2(oprf_server(), 5000, 3);
  for (int i = 0; i < 10; ++i) {
    const std::string url = "https://shop.test/" + std::to_string(i);
    EXPECT_EQ(m1.map(url), m2.map(url));
  }
}

ExtensionConfig test_config() {
  return {.detector = {},
          .cms_params = {.depth = 4, .width = 64},
          .cms_hash_seed = 5};
}

TEST(BrowserExtension, ObservationFeedsDetectorAndPeriodSet) {
  HashUrlMapper mapper(10'000);
  BrowserExtension ext(7, test_config(), mapper);
  ext.observe_ad("https://ad1.test", 1, 0);
  ext.observe_ad("https://ad1.test", 2, 0);
  ext.observe_ad("https://ad2.test", 1, 1);
  EXPECT_EQ(ext.period_ads().size(), 2u);
  EXPECT_EQ(ext.detector().domains_for(ext.ad_id("https://ad1.test")), 2u);
  EXPECT_EQ(ext.user(), 7u);
}

TEST(BrowserExtension, SketchCountsUniqueAdsOnce) {
  HashUrlMapper mapper(10'000);
  BrowserExtension ext(1, test_config(), mapper);
  for (int d = 0; d < 5; ++d)
    ext.observe_ad("https://same.test", static_cast<core::DomainId>(d), 0);
  const auto cms = ext.build_sketch();
  EXPECT_EQ(cms.total_count(), 1u);  // one user-contribution per unique ad
  EXPECT_EQ(cms.query(ext.ad_id("https://same.test")), 1u);
}

TEST(BrowserExtension, NewPeriodClearsReportNotDetector) {
  HashUrlMapper mapper(10'000);
  BrowserExtension ext(1, test_config(), mapper);
  ext.observe_ad("https://a.test", 1, 0);
  ext.start_new_period();
  EXPECT_TRUE(ext.period_ads().empty());
  EXPECT_EQ(ext.build_sketch().total_count(), 0u);
  // Sliding-window state survives the reporting-period boundary.
  EXPECT_EQ(ext.detector().domains_for(ext.ad_id("https://a.test")), 1u);
}

TEST(BrowserExtension, AuditMatchesDetectorRule) {
  HashUrlMapper mapper(10'000);
  BrowserExtension ext(1, test_config(), mapper);
  // 4 distinct ad-serving domains satisfy the min-data rule.
  ext.observe_ad("https://follow.test", 1, 0);
  ext.observe_ad("https://follow.test", 2, 0);
  ext.observe_ad("https://follow.test", 3, 1);
  ext.observe_ad("https://oneoff.test", 4, 1);
  // follow.test: 3 domains >= threshold ((3+1)/2 = 2); few users.
  EXPECT_EQ(ext.audit("https://follow.test", 1.0, 2.5),
            core::Verdict::kTargeted);
  // Seen by too many users: rejected.
  EXPECT_EQ(ext.audit("https://follow.test", 50.0, 2.5),
            core::Verdict::kNonTargeted);
  // Not following: rejected.
  EXPECT_EQ(ext.audit("https://oneoff.test", 1.0, 2.5),
            core::Verdict::kNonTargeted);
}

TEST(BrowserExtension, AuditAbstainsWithoutMinData) {
  HashUrlMapper mapper(10'000);
  BrowserExtension ext(1, test_config(), mapper);
  ext.observe_ad("https://a.test", 1, 0);
  EXPECT_EQ(ext.audit("https://a.test", 1.0, 5.0),
            core::Verdict::kInsufficientData);
}

TEST(BrowserExtension, BlindedReportHidesAndCancels) {
  HashUrlMapper mapper(10'000);
  util::Rng rng(8);
  const crypto::DhGroup group = crypto::DhGroup::generate(rng, 128);
  std::vector<crypto::DhKeyPair> keys;
  std::vector<crypto::Bignum> publics;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(crypto::dh_keygen(group, rng));
    publics.push_back(keys.back().public_key);
  }
  std::vector<BrowserExtension> exts;
  std::vector<crypto::BlindingParticipant> parts;
  for (std::size_t i = 0; i < 3; ++i) {
    exts.emplace_back(static_cast<core::UserId>(i), test_config(), mapper);
    parts.emplace_back(group, i, keys[i],
                       std::span<const crypto::Bignum>(publics));
    exts.back().observe_ad("https://common.test", 1, 0);
  }
  std::vector<std::vector<crypto::BlindCell>> reports;
  for (std::size_t i = 0; i < 3; ++i)
    reports.push_back(exts[i].build_blinded_report(parts[i], 0));
  // Single report differs from the plaintext sketch (blinded).
  const auto plain = exts[0].build_sketch();
  std::size_t equal = 0;
  for (std::size_t c = 0; c < plain.cells().size(); ++c)
    equal += reports[0][c] == plain.cells()[c];
  EXPECT_LT(equal, plain.cells().size() / 4);
  // Aggregation cancels the blinding: the common ad counts 3 users.
  const auto agg = crypto::aggregate_blinded(reports);
  const auto cms = sketch::CountMinSketch::from_cells(
      plain.params(), plain.hash_seed(), agg);
  EXPECT_EQ(cms.query(mapper.map("https://common.test")), 3u);
}

}  // namespace
}  // namespace eyw::client
