#include <cmath>

#include <gtest/gtest.h>

#include "analysis/confusion.hpp"
#include "analysis/content_based.hpp"
#include "analysis/eval_tree.hpp"
#include "analysis/f8_labeler.hpp"

namespace eyw::analysis {
namespace {

TEST(Confusion, RatesAndCounts) {
  ConfusionMatrix m;
  m.add(true, true);    // TP
  m.add(true, false);   // FP
  m.add(false, true);   // FN
  m.add(false, true);   // FN
  m.add(false, false);  // TN
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 2u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_EQ(m.decided(), 5u);
  EXPECT_DOUBLE_EQ(m.false_negative_rate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.5);
  EXPECT_DOUBLE_EQ(m.precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.4);
}

TEST(Confusion, EmptyIsSafe) {
  const ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.false_negative_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(Confusion, ToStringMentionsEverything) {
  ConfusionMatrix m;
  m.add(true, true);
  const auto s = m.to_string();
  EXPECT_NE(s.find("TP=1"), std::string::npos);
  EXPECT_NE(s.find("FNR="), std::string::npos);
}

TEST(ContentBased, ProfileRequiresDistinctDomains) {
  ContentBasedClassifier cb({.min_sites_per_category = 3});
  // Category 5: 3 distinct domains -> in profile. Category 7: repeated
  // visits to ONE domain -> not in profile.
  cb.record_visit(1, 10, 5);
  cb.record_visit(1, 11, 5);
  cb.record_visit(1, 12, 5);
  for (int i = 0; i < 10; ++i) cb.record_visit(1, 20, 7);
  const auto profile = cb.profile(1);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0], 5);
  EXPECT_TRUE(cb.has_semantic_overlap(1, 5));
  EXPECT_FALSE(cb.has_semantic_overlap(1, 7));
}

TEST(ContentBased, UnknownUserHasNoProfile) {
  const ContentBasedClassifier cb;
  EXPECT_TRUE(cb.profile(99).empty());
  EXPECT_FALSE(cb.has_semantic_overlap(99, 1));
  EXPECT_FALSE(cb.classify_targeted(99, 1));
}

TEST(ContentBased, ClassifyEqualsOverlap) {
  ContentBasedClassifier cb({.min_sites_per_category = 1});
  cb.record_visit(1, 10, 3);
  EXPECT_EQ(cb.classify_targeted(1, 3), cb.has_semantic_overlap(1, 3));
  EXPECT_TRUE(cb.classify_targeted(1, 3));
}

TEST(ContentBased, UsersAreIndependent) {
  ContentBasedClassifier cb({.min_sites_per_category = 1});
  cb.record_visit(1, 10, 3);
  EXPECT_FALSE(cb.has_semantic_overlap(2, 3));
}

TEST(F8Labeler, RejectsBadConfig) {
  EXPECT_THROW(F8Labeler({.coverage = 1.5}), std::invalid_argument);
  EXPECT_THROW(F8Labeler({.accuracy = -0.1}), std::invalid_argument);
}

TEST(F8Labeler, MemoizedPerPair) {
  F8Labeler f8({.coverage = 0.5, .accuracy = 0.8, .seed = 1});
  for (int i = 0; i < 50; ++i) {
    const auto first = f8.label(1, static_cast<core::AdId>(i), true);
    const auto again = f8.label(1, static_cast<core::AdId>(i), true);
    EXPECT_EQ(first, again);
  }
}

TEST(F8Labeler, CoverageZeroNeverLabels) {
  F8Labeler f8({.coverage = 0.0, .accuracy = 1.0, .seed = 2});
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(f8.label(1, static_cast<core::AdId>(i), true).has_value());
  EXPECT_EQ(f8.labels_produced(), 0u);
}

TEST(F8Labeler, PerfectLabelerMatchesGroundTruth) {
  F8Labeler f8({.coverage = 1.0, .accuracy = 1.0, .seed = 3});
  for (int i = 0; i < 20; ++i) {
    const bool truth = i % 2 == 0;
    EXPECT_EQ(f8.label(2, static_cast<core::AdId>(i), truth), truth);
  }
}

TEST(F8Labeler, AccuracyApproximatelyRespected) {
  F8Labeler f8({.coverage = 1.0, .accuracy = 0.7, .seed = 4});
  int correct = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    correct += *f8.label(3, static_cast<core::AdId>(i), true) == true;
  EXPECT_NEAR(correct / static_cast<double>(n), 0.7, 0.03);
}

EvalRecord record(bool eyw, bool crawler, bool overlap,
                  std::optional<bool> f8, bool truth) {
  return {.user = 1,
          .ad = 1,
          .eyewnder_targeted = eyw,
          .in_crawler = crawler,
          .semantic_overlap = overlap,
          .f8_label = f8,
          .ground_truth_targeted = truth};
}

TEST(EvalTree, TargetedBranchLeaves) {
  std::vector<EvalRecord> records{
      record(true, true, false, std::nullopt, false),   // FP(CR)
      record(true, false, true, std::nullopt, true),    // TP(CB)
      record(true, false, false, true, true),           // TP(F8)
      record(true, false, false, false, false),         // FP(F8)
  };
  const auto r = evaluate_tree(records, {.resolution_accuracy = 1.0});
  EXPECT_EQ(r.classified_targeted, 4u);
  EXPECT_EQ(r.fp_cr, 1u);
  EXPECT_EQ(r.tp_cb, 1u);
  EXPECT_EQ(r.tp_f8, 1u);
  EXPECT_EQ(r.fp_f8, 1u);
  EXPECT_EQ(r.unknown_targeted, 0u);
  EXPECT_DOUBLE_EQ(r.overall_tp_rate, 0.5);
}

TEST(EvalTree, NonTargetedBranchLeaves) {
  std::vector<EvalRecord> records{
      record(false, true, false, std::nullopt, false),   // TN(CR)
      record(false, false, true, std::nullopt, true),    // FN(CB)
      record(false, false, false, false, false),         // TN(F8)
      record(false, false, false, true, true),           // FN(F8)
  };
  const auto r = evaluate_tree(records, {.resolution_accuracy = 1.0});
  EXPECT_EQ(r.classified_non_targeted, 4u);
  EXPECT_EQ(r.tn_cr, 1u);
  EXPECT_EQ(r.fn_cb, 1u);
  EXPECT_EQ(r.tn_f8, 1u);
  EXPECT_EQ(r.fn_f8, 1u);
  EXPECT_DOUBLE_EQ(r.overall_tn_rate, 0.5);
}

TEST(EvalTree, UnknownResolutionUsesGroundTruthWhenPerfect) {
  std::vector<EvalRecord> records{
      record(true, false, false, std::nullopt, true),    // unknown-T -> TP
      record(true, false, false, std::nullopt, false),   // unknown-T -> FP
      record(false, false, false, std::nullopt, false),  // unknown-NT -> TN
      record(false, false, false, std::nullopt, true),   // unknown-NT -> FN
  };
  const auto r = evaluate_tree(records, {.resolution_accuracy = 1.0});
  EXPECT_EQ(r.unknown_targeted, 2u);
  EXPECT_EQ(r.unknown_t_likely_tp, 1u);
  EXPECT_EQ(r.unknown_t_likely_fp, 1u);
  EXPECT_EQ(r.unknown_nt_likely_tn, 1u);
  EXPECT_EQ(r.unknown_nt_likely_fn, 1u);
}

TEST(EvalTree, ReportContainsHeadlineRates) {
  std::vector<EvalRecord> records{record(true, false, true, std::nullopt, true)};
  const auto r = evaluate_tree(records, {});
  const auto report = r.to_report();
  EXPECT_NE(report.find("Overall likely-TP rate"), std::string::npos);
  EXPECT_NE(report.find("TP(CB)"), std::string::npos);
}

TEST(EvalTree, EmptyInputIsSafe) {
  const auto r = evaluate_tree({}, {});
  EXPECT_EQ(r.total, 0u);
  EXPECT_DOUBLE_EQ(r.overall_tp_rate, 0.0);
}

}  // namespace
}  // namespace eyw::analysis
