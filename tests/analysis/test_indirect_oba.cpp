#include "analysis/indirect_oba.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eyw::analysis {
namespace {

std::vector<double> flat(double v = 1.0) {
  return std::vector<double>(adnet::kNumCategories, v);
}

TEST(CorrelationPValue, StrongCorrelationIsSignificant) {
  EXPECT_LT(correlation_p_value(0.9, 24), 0.001);
  EXPECT_LT(correlation_p_value(-0.9, 24), 0.001);
}

TEST(CorrelationPValue, WeakCorrelationIsNot) {
  EXPECT_GT(correlation_p_value(0.1, 24), 0.3);
  EXPECT_DOUBLE_EQ(correlation_p_value(0.5, 2), 1.0);  // too few samples
}

TEST(IndirectOba, DetectsCorrelatedAudienceWithoutOverlap) {
  // User and the ad's receivers share a spiky topic profile; the ad's own
  // offering category (7) is NOT in the user's profile.
  auto user = flat(1.0);
  auto receivers = flat(2.0);
  user[3] = 50;
  receivers[3] = 90;
  user[11] = 30;
  receivers[11] = 55;
  const std::vector<adnet::CategoryId> profile{3, 11};
  const auto r = assess_indirect_oba(user, receivers, /*ad_offering=*/7,
                                     profile);
  EXPECT_GT(r.correlation, 0.9);
  EXPECT_TRUE(r.significant);
  EXPECT_FALSE(r.semantic_overlap);
  EXPECT_TRUE(r.likely_indirect_oba);
}

TEST(IndirectOba, SemanticOverlapIsDirectNotIndirect) {
  auto user = flat(1.0);
  auto receivers = flat(2.0);
  user[3] = 50;
  receivers[3] = 90;
  const std::vector<adnet::CategoryId> profile{3};
  const auto r = assess_indirect_oba(user, receivers, /*ad_offering=*/3,
                                     profile);
  EXPECT_TRUE(r.significant);
  EXPECT_TRUE(r.semantic_overlap);
  EXPECT_FALSE(r.likely_indirect_oba);  // that's direct targeting, CB's job
}

TEST(IndirectOba, UncorrelatedAudienceNotFlagged) {
  util::Rng rng(5);
  auto user = flat();
  auto receivers = flat();
  for (std::size_t c = 0; c < adnet::kNumCategories; ++c) {
    user[c] = static_cast<double>(rng.below(100));
    receivers[c] = static_cast<double>(rng.below(100));
  }
  const auto r =
      assess_indirect_oba(user, receivers, 0, {}, {.min_correlation = 0.5});
  EXPECT_FALSE(r.likely_indirect_oba);
}

TEST(IndirectOba, MinCorrelationGate) {
  // Mild correlation, formally significant but below the gate.
  auto user = flat(1.0);
  auto receivers = flat(1.0);
  for (std::size_t c = 0; c < adnet::kNumCategories; ++c) {
    user[c] = static_cast<double>(c);
    receivers[c] = static_cast<double>(c) + (c % 2 ? 30.0 : -30.0);
  }
  const auto weak = assess_indirect_oba(user, receivers, 0, {},
                                        {.min_correlation = 0.99});
  EXPECT_FALSE(weak.significant);
}

TEST(IndirectOba, RejectsWrongVocabularySize) {
  const std::vector<double> bad(3, 1.0);
  EXPECT_THROW((void)assess_indirect_oba(bad, flat(), 0, {}),
               std::invalid_argument);
  EXPECT_THROW((void)assess_indirect_oba(flat(), bad, 0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace eyw::analysis
