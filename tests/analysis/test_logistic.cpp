#include "analysis/logistic.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eyw::analysis {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(Logistic, RecoversKnownCoefficients) {
  // Single binary predictor with planted log-odds.
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  const double beta0 = -0.5, beta1 = 1.2;
  for (int i = 0; i < 20000; ++i) {
    const double xi = i % 2;
    const double p = 1.0 / (1.0 + std::exp(-(beta0 + beta1 * xi)));
    x.push_back({xi});
    y.push_back(rng.chance(p) ? 1.0 : 0.0);
  }
  const GlmFit fit = logistic_fit(x, y, {"x"});
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.coefficients[0].estimate, beta0, 0.08);
  EXPECT_NEAR(fit.by_name("x").estimate, beta1, 0.08);
  EXPECT_NEAR(fit.by_name("x").odds_ratio, std::exp(beta1), 0.3);
  EXPECT_LT(fit.by_name("x").p_value, 1e-6);
}

TEST(Logistic, NullEffectIsInsignificant) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 4000; ++i) {
    x.push_back({static_cast<double>(i % 2)});
    y.push_back(rng.chance(0.4) ? 1.0 : 0.0);  // independent of x
  }
  const GlmFit fit = logistic_fit(x, y, {"noise"});
  EXPECT_TRUE(fit.converged);
  EXPECT_GT(fit.by_name("noise").p_value, 0.01);
  EXPECT_NEAR(fit.by_name("noise").odds_ratio, 1.0, 0.25);
}

TEST(Logistic, ConfidenceIntervalBracketsOddsRatio) {
  util::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    const double xi = i % 2;
    const double p = 1.0 / (1.0 + std::exp(-(0.2 + 0.7 * xi)));
    x.push_back({xi});
    y.push_back(rng.chance(p) ? 1.0 : 0.0);
  }
  const GlmFit fit = logistic_fit(x, y, {"x"});
  const auto& c = fit.by_name("x");
  EXPECT_LT(c.ci_low, c.odds_ratio);
  EXPECT_GT(c.ci_high, c.odds_ratio);
  EXPECT_LT(c.ci_low, std::exp(0.7));
  EXPECT_GT(c.ci_high, std::exp(0.7));
}

TEST(Logistic, DevianceImprovesOverNull) {
  util::Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 3000; ++i) {
    const double xi = i % 2;
    const double p = xi > 0 ? 0.8 : 0.2;
    x.push_back({xi});
    y.push_back(rng.chance(p) ? 1.0 : 0.0);
  }
  const GlmFit fit = logistic_fit(x, y, {"x"});
  EXPECT_LT(fit.deviance, fit.null_deviance - 100.0);
}

TEST(Logistic, InputValidation) {
  EXPECT_THROW((void)logistic_fit({}, {}, {}), std::invalid_argument);
  EXPECT_THROW((void)logistic_fit({{1.0}}, {0.5}, {"x"}),
               std::invalid_argument);  // non-binary y
  EXPECT_THROW((void)logistic_fit({{1.0}}, {1.0, 0.0}, {"x"}),
               std::invalid_argument);  // size mismatch
  EXPECT_THROW((void)logistic_fit({{1.0}}, {1.0}, {"a", "b"}),
               std::invalid_argument);  // names mismatch
  EXPECT_THROW((void)logistic_fit({{1.0}, {1.0, 2.0}}, {1.0, 0.0}, {"x"}),
               std::invalid_argument);  // ragged
}

TEST(Logistic, SingularDesignThrows) {
  // Perfectly collinear columns.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double xi = i % 2;
    x.push_back({xi, 2 * xi});
    y.push_back(i % 3 == 0 ? 1.0 : 0.0);
  }
  EXPECT_THROW((void)logistic_fit(x, y, {"a", "b"}), std::runtime_error);
}

TEST(Logistic, ByNameThrowsOnUnknown) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {0.0}, {1.0}};
  std::vector<double> y{0.0, 1.0, 1.0, 0.0};
  const GlmFit fit = logistic_fit(x, y, {"x"});
  EXPECT_THROW((void)fit.by_name("nope"), std::out_of_range);
}

TEST(DesignBuilder, DummyCoding) {
  DesignBuilder d;
  d.add_factor("G", {"f", "m"});
  d.add_factor("I", {"low", "mid", "high"});
  d.add_row({0, 0}, false);  // all base levels -> all zeros
  d.add_row({1, 2}, true);   // male, high
  ASSERT_EQ(d.names().size(), 3u);  // G:m, I:mid, I:high
  EXPECT_EQ(d.names()[0], "G:m");
  EXPECT_EQ(d.names()[2], "I:high");
  EXPECT_EQ(d.x()[0], (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(d.x()[1], (std::vector<double>{1, 0, 1}));
  EXPECT_EQ(d.y()[1], 1.0);
}

TEST(DesignBuilder, Validation) {
  DesignBuilder d;
  EXPECT_THROW(d.add_factor("single", {"only"}), std::invalid_argument);
  d.add_factor("G", {"f", "m"});
  EXPECT_THROW(d.add_row({0, 0}, true), std::invalid_argument);  // arity
  EXPECT_THROW(d.add_row({2}, true), std::invalid_argument);  // level range
  d.add_row({0}, true);
  EXPECT_THROW(d.add_factor("late", {"a", "b"}), std::logic_error);
}

TEST(DesignBuilder, FitRecoversFactorEffects) {
  DesignBuilder d;
  d.add_factor("G", {"f", "m"});
  util::Rng rng(6);
  for (int i = 0; i < 8000; ++i) {
    const std::size_t g = i % 2;
    const double p = g == 1 ? 0.3 : 0.5;  // male OR = (0.3/0.7)/(0.5/0.5) = 0.43
    d.add_row({g}, rng.chance(p));
  }
  const GlmFit fit = d.fit();
  EXPECT_NEAR(fit.by_name("G:m").odds_ratio, 3.0 / 7.0, 0.06);
  EXPECT_LT(fit.by_name("G:m").p_value, 1e-10);
}

TEST(Logistic, TableRendering) {
  DesignBuilder d;
  d.add_factor("G", {"f", "m"});
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) d.add_row({static_cast<std::size_t>(i % 2)}, rng.chance(0.5));
  const auto table = d.fit().to_table();
  EXPECT_NE(table.find("OR"), std::string::npos);
  EXPECT_NE(table.find("G:m"), std::string::npos);
  EXPECT_NE(table.find("converged=yes"), std::string::npos);
}

}  // namespace
}  // namespace eyw::analysis
