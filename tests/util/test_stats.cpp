#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eyw::util {
namespace {

const std::vector<double> kSample{2, 4, 4, 4, 5, 5, 7, 9};

TEST(Stats, MeanBasic) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MeanSingle) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{3.5}), 3.5);
}

TEST(Stats, MedianOddSize) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5, 1, 3}), 3.0);
}

TEST(Stats, MedianEvenSizeAveragesMiddle) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> v{9, 1, 5};
  const auto copy = v;
  (void)median(v);
  EXPECT_EQ(v, copy);
}

TEST(Stats, MedianEmptyIsZero) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, PopulationVariance) {
  // Known example: population stddev of kSample is 2.
  EXPECT_DOUBLE_EQ(variance(kSample), 4.0);
}

TEST(Stats, SampleStddev) {
  const double expected = std::sqrt(32.0 / 7.0);
  EXPECT_NEAR(stddev(kSample), expected, 1e-12);
}

TEST(Stats, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, StddevConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3, 3, 3, 3}), 0.0);
}

TEST(Stats, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileMedianAgreement) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.5), median(kSample));
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(kSample, 1.1), std::invalid_argument);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
  EXPECT_THROW((void)min_value(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)max_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, SummaryConsistent) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, mean(kSample));
  EXPECT_DOUBLE_EQ(s.median, median(kSample));
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW(
      (void)pearson(std::vector<double>{1, 2}, std::vector<double>{1, 2, 3}),
      std::invalid_argument);
}

TEST(Stats, ToDoubles) {
  const std::vector<int> in{1, 2, 3};
  const auto out = to_doubles(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

}  // namespace
}  // namespace eyw::util
