#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace eyw::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(23);
  for (double mean : {0.5, 3.0, 10.0, 50.0}) {
    double acc = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(acc / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(Rng, GeometricMean) {
  Rng rng(29);
  const double p = 0.25;
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(acc / n, (1 - p) / p, 0.15);
}

TEST(Rng, FillBytesCoversAllBytes) {
  Rng rng(31);
  std::vector<std::uint8_t> buf(1000, 0);
  rng.fill_bytes(buf);
  std::set<std::uint8_t> distinct(buf.begin(), buf.end());
  EXPECT_GT(distinct.size(), 200u);
}

TEST(Rng, FillBytesOddLengths) {
  Rng rng(37);
  for (std::size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u}) {
    std::vector<std::uint8_t> buf(len, 0);
    rng.fill_bytes(buf);  // must not crash or write OOB
  }
  SUCCEED();
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  const auto s = rng.sample_indices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(43);
  auto s = rng.sample_indices(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleIndicesThrowsWhenKTooLarge) {
  Rng rng(47);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(59);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(61);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  ZipfSampler z(100, 1.0);
  Rng rng(67);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(50, 1.2);
  double acc = 0;
  for (std::size_t i = 0; i < z.size(); ++i) acc += z.pmf(i);
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(ZipfSampler, ThrowsOnEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> w{1.0, 2.0, 7.0};
  DiscreteSampler s(w);
  Rng rng(71);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 50000; ++i) ++counts[s.sample(rng)];
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 50000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 50000.0, 0.7, 0.02);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0};
  DiscreteSampler s(w);
  Rng rng(73);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.sample(rng), 1u);
}

TEST(DiscreteSampler, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace eyw::util
