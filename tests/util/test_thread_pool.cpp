#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eyw::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> out(64, 0);
  pool.parallel_for(64, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultsMatchSerialForAnyThreadCount) {
  const std::size_t n = 500;
  std::vector<std::uint64_t> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = i * i + 17;
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(n, 0);
    pool.parallel_for(n, [&](std::size_t i) { out[i] = i * i + 17; });
    EXPECT_EQ(out, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.parallel_for(16, [&](std::size_t i) {
    pool.parallel_for(16,
                      [&](std::size_t j) { hits[i * 16 + j].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<std::uint64_t> sum{0};
  ThreadPool::shared().parallel_for(
      100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ExplicitGrainCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(97, [&](std::size_t i) { hits[i].fetch_add(1); },
                    /*grain=*/10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace eyw::util
