#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace eyw::util {
namespace {

TEST(Histogram, EmptyState) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_DOUBLE_EQ(h.pdf(5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(Histogram, AddAndCount) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(2, 10);
  EXPECT_EQ(h.count(2), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, ZeroWeightIgnored) {
  Histogram h;
  h.add(2, 0);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, PdfSumsToOne) {
  Histogram h;
  h.add(1, 3);
  h.add(2, 5);
  h.add(9, 2);
  double acc = 0;
  for (const auto& [v, c] : h.items()) acc += h.pdf(v);
  EXPECT_NEAR(acc, 1.0, 1e-12);
}

TEST(Histogram, MeanMatchesExpandedSample) {
  Histogram h;
  h.add(1, 2);
  h.add(4, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  const auto sample = h.expand();
  ASSERT_EQ(sample.size(), 4u);
}

TEST(Histogram, ItemsSorted) {
  Histogram h;
  h.add(9);
  h.add(1);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1u);
  EXPECT_EQ(items[1].first, 5u);
  EXPECT_EQ(items[2].first, 9u);
}

TEST(Histogram, MaxValue) {
  Histogram h;
  h.add(4);
  h.add(17);
  EXPECT_EQ(h.max_value(), 17u);
}

TEST(Histogram, TableRendering) {
  Histogram h;
  h.add(2, 2);
  const auto table = h.to_table("#users");
  EXPECT_NE(table.find("#users"), std::string::npos);
  EXPECT_NE(table.find('2'), std::string::npos);
}

TEST(TotalVariation, IdenticalIsZero) {
  Histogram a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(static_cast<std::uint64_t>(i), 2);
    b.add(static_cast<std::uint64_t>(i), 4);  // same shape, double mass
  }
  EXPECT_NEAR(total_variation(a, b), 0.0, 1e-12);
}

TEST(TotalVariation, DisjointIsOne) {
  Histogram a, b;
  a.add(1, 5);
  b.add(2, 5);
  EXPECT_NEAR(total_variation(a, b), 1.0, 1e-12);
}

TEST(TotalVariation, Symmetric) {
  Histogram a, b;
  a.add(1, 3);
  a.add(2, 1);
  b.add(1, 1);
  b.add(3, 3);
  EXPECT_DOUBLE_EQ(total_variation(a, b), total_variation(b, a));
}

TEST(TotalVariation, Bounded) {
  Histogram a, b;
  a.add(1, 3);
  a.add(2, 2);
  b.add(2, 2);
  b.add(4, 7);
  const double tv = total_variation(a, b);
  EXPECT_GE(tv, 0.0);
  EXPECT_LE(tv, 1.0);
}

}  // namespace
}  // namespace eyw::util
