#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace eyw::util {
namespace {

TEST(Hex, EncodeBasic) {
  const std::vector<std::uint8_t> in{0x00, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(in), "00abff10");
}

TEST(Hex, EncodeEmpty) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
}

TEST(Hex, DecodeBasic) {
  const auto out = from_hex("00abff10");
  const std::vector<std::uint8_t> expected{0x00, 0xab, 0xff, 0x10};
  EXPECT_EQ(out, expected);
}

TEST(Hex, DecodeUppercase) {
  const auto out = from_hex("ABCDEF");
  const std::vector<std::uint8_t> expected{0xab, 0xcd, 0xef};
  EXPECT_EQ(out, expected);
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 256; ++i) in.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(in)), in);
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Hex, AsBytesViewsString) {
  const std::string s = "AB";
  const auto b = as_bytes(s);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'A');
  EXPECT_EQ(b[1], 'B');
}

}  // namespace
}  // namespace eyw::util
