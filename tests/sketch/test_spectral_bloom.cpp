#include "sketch/spectral_bloom.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace eyw::sketch {
namespace {

TEST(SbfParams, ClassicSizing) {
  // n=1000, p=0.01: m = ceil(1000 * 9.585) = 9586, k = 7.
  const SbfParams p = SbfParams::from_capacity(1000, 0.01);
  EXPECT_NEAR(static_cast<double>(p.cells), 9586.0, 2.0);
  EXPECT_EQ(p.hashes, 7u);
}

TEST(SbfParams, RejectsDegenerate) {
  EXPECT_THROW((void)SbfParams::from_capacity(0, 0.01), std::invalid_argument);
  EXPECT_THROW((void)SbfParams::from_capacity(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SbfParams::from_capacity(10, 1.0), std::invalid_argument);
}

TEST(SpectralBloom, NeverUnderestimates) {
  SpectralBloom sbf({.cells = 512, .hashes = 4}, 1);
  std::map<std::uint64_t, std::uint32_t> truth;
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(100);
    sbf.update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) EXPECT_GE(sbf.query(key), count);
}

TEST(SpectralBloom, ExactWhenSparse) {
  SpectralBloom sbf(SbfParams::from_capacity(1000, 0.001), 3);
  for (std::uint64_t k = 0; k < 50; ++k)
    sbf.update(k, static_cast<std::uint32_t>(k + 1));
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_EQ(sbf.query(k), k + 1);
}

TEST(SpectralBloom, MinimumIncreaseTighterThanPlainIncrement) {
  // On a heavily-collided configuration, min-increase total error must be
  // no worse than the mergeable (plain) variant.
  const SbfParams params{.cells = 64, .hashes = 3};
  SpectralBloom tight(params, 5);
  MergeableSpectralBloom loose(params, 5);
  std::map<std::uint64_t, std::uint32_t> truth;
  util::Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.below(200);
    tight.update(key);
    loose.update(key);
    ++truth[key];
  }
  std::uint64_t err_tight = 0, err_loose = 0;
  for (const auto& [key, count] : truth) {
    err_tight += tight.query(key) - count;
    err_loose += loose.query(key) - count;
  }
  EXPECT_LE(err_tight, err_loose);
}

TEST(SpectralBloom, TotalCountTracksUpdates) {
  SpectralBloom sbf({.cells = 128, .hashes = 3}, 7);
  sbf.update(1, 5);
  sbf.update(2, 3);
  EXPECT_EQ(sbf.total_count(), 8u);
}

TEST(SpectralBloom, RejectsZeroDimensions) {
  EXPECT_THROW(SpectralBloom({.cells = 0, .hashes = 3}, 1),
               std::invalid_argument);
  EXPECT_THROW(SpectralBloom({.cells = 16, .hashes = 0}, 1),
               std::invalid_argument);
}

TEST(MergeableSbf, MergeEqualsCombinedStream) {
  const SbfParams params{.cells = 256, .hashes = 4};
  MergeableSpectralBloom a(params, 11), b(params, 11), combined(params, 11);
  util::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.below(80);
    if (i % 2 == 0) {
      a.update(key);
    } else {
      b.update(key);
    }
    combined.update(key);
  }
  a.merge(b);
  for (std::uint64_t k = 0; k < 80; ++k)
    EXPECT_EQ(a.query(k), combined.query(k));
}

TEST(MergeableSbf, MergeRejectsIncompatible) {
  MergeableSpectralBloom a({.cells = 64, .hashes = 3}, 1);
  MergeableSpectralBloom b({.cells = 65, .hashes = 3}, 1);
  MergeableSpectralBloom c({.cells = 64, .hashes = 3}, 9);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MergeableSbf, NeverUnderestimates) {
  MergeableSpectralBloom sbf({.cells = 512, .hashes = 4}, 13);
  std::map<std::uint64_t, std::uint32_t> truth;
  util::Rng rng(14);
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t key = rng.below(120);
    sbf.update(key, 2);
    truth[key] += 2;
  }
  for (const auto& [key, count] : truth) EXPECT_GE(sbf.query(key), count);
}

// The structural reason the paper picks CMS over min-increase SBF:
// min-increase updates are not mergeable by cell-wise addition.
TEST(SpectralBloom, MinIncreaseNotMergeableByCellSum) {
  const SbfParams params{.cells = 32, .hashes = 3};
  SpectralBloom a(params, 15), b(params, 15), combined(params, 15);
  util::Rng rng(16);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t key = rng.below(64);
    if (i % 2 == 0) {
      a.update(key);
    } else {
      b.update(key);
    }
    combined.update(key);
  }
  // Cell-wise sum of a and b vs the combined-stream filter: they disagree
  // for at least one key (over-collided configuration makes this certain).
  bool any_disagree = false;
  for (std::uint64_t k = 0; k < 64; ++k) {
    std::uint32_t cell_sum_estimate = ~0u;
    for (std::size_t i = 0; i < params.hashes; ++i) {
      // Recompute the would-be summed estimate: query each filter and add —
      // a lower bound on what cell-wise summation would produce.
    }
    const std::uint32_t summed = a.query(k) + b.query(k);
    if (summed != combined.query(k)) {
      any_disagree = true;
      break;
    }
    (void)cell_sum_estimate;
  }
  EXPECT_TRUE(any_disagree);
}

}  // namespace
}  // namespace eyw::sketch
