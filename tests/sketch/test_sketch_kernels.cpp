// Differential suite for the sketch cell kernels: the AVX2 backend must
// agree bit-for-bit with the portable scalar loops on every primitive,
// over every sketch shape the repo configures plus adversarial lengths
// (odd widths, sub-lane tails, unaligned bases). Skips cleanly when the
// AVX2 kernel is not compiled in or the CPU lacks it — the portable
// kernel needs no oracle, it IS the oracle.
#include "sketch/sketch_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace eyw::sketch {
namespace {

/// Cell counts covering the repo's configured geometries (depth x width
/// from tests, scenarios, the paper parameterization 17x2719 and the
/// quickstart 4x256) plus edges: empty, single lane, one under/over the
/// 8-lane AVX2 width, one under/over a full 256-key min-scan block.
const std::vector<std::size_t>& interesting_sizes() {
  static const std::vector<std::size_t> sizes = {
      0,    1,    3,       7,       8,       9,       15,      16,
      17,   31,   33,      57,      64,      65,      100,     127,
      255,  256,  257,     2 * 32,  3 * 16,  4 * 57,  4 * 65,  4 * 128,
      4 * 256, 5 * 256, 8 * 4096, 17 * 2719};
  return sizes;
}

std::vector<std::uint32_t> random_cells(util::Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> cells(n);
  // Full 32-bit range: wrapping overflow paths must agree too.
  for (std::uint32_t& c : cells)
    c = static_cast<std::uint32_t>(rng.next());
  return cells;
}

class SketchKernelDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = avx2_sketch_kernel();
    if (avx2_ == nullptr)
      GTEST_SKIP() << "AVX2 sketch kernel unavailable (not compiled in or "
                      "CPU lacks AVX2) — portable kernel is the only "
                      "backend, nothing to differentiate";
  }

  const SketchKernel* avx2_ = nullptr;
  const SketchKernel& portable_ = portable_sketch_kernel();
};

TEST_F(SketchKernelDifferential, AddCellsAgreesOnEveryShape) {
  util::Rng rng(11);
  for (const std::size_t n : interesting_sizes()) {
    const std::vector<std::uint32_t> src = random_cells(rng, n);
    const std::vector<std::uint32_t> base = random_cells(rng, n);
    std::vector<std::uint32_t> want = base;
    std::vector<std::uint32_t> got = base;
    portable_.add_cells(want.data(), src.data(), n);
    avx2_->add_cells(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST_F(SketchKernelDifferential, SubCellsAgreesOnEveryShape) {
  util::Rng rng(12);
  for (const std::size_t n : interesting_sizes()) {
    const std::vector<std::uint32_t> src = random_cells(rng, n);
    const std::vector<std::uint32_t> base = random_cells(rng, n);
    std::vector<std::uint32_t> want = base;
    std::vector<std::uint32_t> got = base;
    portable_.sub_cells(want.data(), src.data(), n);
    avx2_->sub_cells(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST_F(SketchKernelDifferential, PadAccumulateAgreesBothSigns) {
  util::Rng rng(13);
  for (const std::size_t n : interesting_sizes()) {
    std::vector<std::uint8_t> stream(n * 4);
    for (std::uint8_t& b : stream)
      b = static_cast<std::uint8_t>(rng.next());
    const std::vector<std::uint32_t> base = random_cells(rng, n);
    for (const bool positive : {true, false}) {
      std::vector<std::uint32_t> want = base;
      std::vector<std::uint32_t> got = base;
      portable_.pad_accumulate(want.data(), stream.data(), n, positive);
      avx2_->pad_accumulate(got.data(), stream.data(), n, positive);
      EXPECT_EQ(want, got) << "n=" << n << " positive=" << positive;
    }
  }
}

TEST_F(SketchKernelDifferential, RowMinAgreesOnEveryShape) {
  util::Rng rng(14);
  for (const std::size_t n : interesting_sizes()) {
    if (n == 0) continue;  // an empty row has nothing to gather from
    const std::vector<std::uint32_t> row = random_cells(rng, n);
    // Key batches both shorter and longer than the row, indices across
    // the whole row (31-bit constraint holds: n < 2^31 everywhere here).
    for (const std::size_t keys : {std::size_t{1}, std::size_t{7}, n,
                                   n + 5, std::size_t{256}}) {
      std::vector<std::uint32_t> idx(keys);
      for (std::uint32_t& i : idx)
        i = static_cast<std::uint32_t>(rng.next() % n);
      std::vector<std::uint32_t> want = random_cells(rng, keys);
      std::vector<std::uint32_t> got = want;
      portable_.row_min(want.data(), row.data(), idx.data(), keys);
      avx2_->row_min(got.data(), row.data(), idx.data(), keys);
      EXPECT_EQ(want, got) << "n=" << n << " keys=" << keys;
    }
  }
}

TEST_F(SketchKernelDifferential, UnalignedBasesAgree) {
  // Slide the working window one element at a time across a 32-byte
  // boundary: every base alignment mod 32 must produce identical bytes
  // (the kernels use unaligned loads; this is the test that keeps it so).
  util::Rng rng(15);
  constexpr std::size_t kN = 61;  // odd length: head + vector body + tail
  const std::vector<std::uint32_t> backing_src = random_cells(rng, kN + 16);
  const std::vector<std::uint32_t> backing_base = random_cells(rng, kN + 16);
  for (std::size_t off = 0; off < 8; ++off) {
    std::vector<std::uint32_t> want = backing_base;
    std::vector<std::uint32_t> got = backing_base;
    portable_.add_cells(want.data() + off, backing_src.data() + off, kN);
    avx2_->add_cells(got.data() + off, backing_src.data() + off, kN);
    EXPECT_EQ(want, got) << "offset=" << off;

    want = backing_base;
    got = backing_base;
    portable_.sub_cells(want.data() + off, backing_src.data() + off, kN);
    avx2_->sub_cells(got.data() + off, backing_src.data() + off, kN);
    EXPECT_EQ(want, got) << "offset=" << off;
  }
  // Byte streams can land at any offset at all (they come straight out of
  // SHA-256 output buffers).
  std::vector<std::uint8_t> stream(kN * 4 + 8);
  for (std::uint8_t& b : stream)
    b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t off = 0; off < 5; ++off) {
    std::vector<std::uint32_t> want = backing_base;
    std::vector<std::uint32_t> got = backing_base;
    portable_.pad_accumulate(want.data(), stream.data() + off, kN, true);
    avx2_->pad_accumulate(got.data(), stream.data() + off, kN, true);
    EXPECT_EQ(want, got) << "stream offset=" << off;
  }
}

TEST(SketchKernelSelection, ActiveKernelRespectsEnvOverride) {
  // The suite runs under both CI legs (default and
  // EYW_SKETCH_KERNEL=portable); whatever was selected must be one of the
  // two real backends and honor an explicit portable override.
  const SketchKernel& active = active_sketch_kernel();
  const char* env = ::getenv("EYW_SKETCH_KERNEL");
  if (env != nullptr && std::string_view(env) == "portable")
    EXPECT_STREQ(active.name, "portable");
  else
    EXPECT_TRUE(std::string_view(active.name) == "portable" ||
                std::string_view(active.name) == "avx2");
  if (std::string_view(active.name) == "avx2")
    EXPECT_NE(avx2_sketch_kernel(), nullptr);
}

}  // namespace
}  // namespace eyw::sketch
