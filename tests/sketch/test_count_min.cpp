#include "sketch/count_min.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace eyw::sketch {
namespace {

TEST(CmsParams, PaperParameterization) {
  // delta = epsilon = 0.001, 4-byte cells: the paper reports 185/196/207 KB
  // (decimal kilobytes)
  // for T = 10k/50k/100k. w = ceil(e/0.001) = 2719.
  const CmsParams p10k = CmsParams::from_error_bounds(10'000, 0.001, 0.001);
  EXPECT_EQ(p10k.width, 2719u);
  EXPECT_EQ(p10k.depth, 17u);  // ceil(ln(1e7))
  EXPECT_EQ(p10k.bytes(), 17u * 2719u * 4u);
  EXPECT_NEAR(static_cast<double>(p10k.bytes()) / 1000.0, 185.0, 1.0);

  const CmsParams p50k = CmsParams::from_error_bounds(50'000, 0.001, 0.001);
  EXPECT_EQ(p50k.depth, 18u);
  EXPECT_NEAR(static_cast<double>(p50k.bytes()) / 1000.0, 196.0, 1.0);

  const CmsParams p100k = CmsParams::from_error_bounds(100'000, 0.001, 0.001);
  EXPECT_EQ(p100k.depth, 19u);
  EXPECT_NEAR(static_cast<double>(p100k.bytes()) / 1000.0, 207.0, 1.0);
}

TEST(CmsParams, RejectsDegenerateInputs) {
  EXPECT_THROW((void)CmsParams::from_error_bounds(0, 0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)CmsParams::from_error_bounds(10, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)CmsParams::from_error_bounds(10, 0.1, 1.5),
               std::invalid_argument);
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch cms({.depth = 4, .width = 64}, /*seed=*/1);
  std::map<std::uint64_t, std::uint32_t> truth;
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(300);
    cms.update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth)
    EXPECT_GE(cms.query(key), count) << key;
}

TEST(CountMin, ExactWhenSparse) {
  // Far fewer keys than width: collisions are unlikely, estimates exact.
  CountMinSketch cms({.depth = 8, .width = 4096}, 3);
  for (std::uint64_t k = 0; k < 20; ++k) cms.update(k, static_cast<std::uint32_t>(k + 1));
  for (std::uint64_t k = 0; k < 20; ++k)
    EXPECT_EQ(cms.query(k), k + 1);
}

TEST(CountMin, UnseenKeyUsuallyZeroWhenSparse) {
  CountMinSketch cms({.depth = 8, .width = 4096}, 4);
  for (std::uint64_t k = 0; k < 50; ++k) cms.update(k);
  int nonzero = 0;
  for (std::uint64_t k = 1000; k < 1100; ++k) nonzero += cms.query(k) != 0;
  EXPECT_LE(nonzero, 2);
}

TEST(CountMin, ErrorBoundHolds) {
  // Guarantee (2): estimate <= true + epsilon * L1 w.p. 1 - delta.
  const double epsilon = 0.01, delta = 0.01;
  const std::size_t n_keys = 500;
  const CmsParams params =
      CmsParams::from_error_bounds(n_keys, epsilon, delta);
  CountMinSketch cms(params, 5);
  std::map<std::uint64_t, std::uint32_t> truth;
  util::Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(n_keys);
    cms.update(key);
    ++truth[key];
  }
  const double bound =
      epsilon * static_cast<double>(cms.total_count());
  std::size_t violations = 0;
  for (const auto& [key, count] : truth)
    if (cms.query(key) > count + bound) ++violations;
  // delta bounds the *joint* failure probability in the paper's
  // parameterization; allow a tiny slack for test stability.
  EXPECT_LE(violations, 1u + static_cast<std::size_t>(delta * n_keys));
}

TEST(CountMin, WeightedUpdates) {
  CountMinSketch cms({.depth = 4, .width = 128}, 7);
  cms.update(42, 10);
  cms.update(42, 5);
  EXPECT_GE(cms.query(42), 15u);
  EXPECT_EQ(cms.total_count(), 15u);
}

TEST(CountMin, MergeEqualsCombinedStream) {
  const CmsParams params{.depth = 5, .width = 256};
  CountMinSketch a(params, 11), b(params, 11), combined(params, 11);
  util::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.below(100);
    if (i % 2 == 0) {
      a.update(key);
    } else {
      b.update(key);
    }
    combined.update(key);
  }
  a.merge(b);
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_EQ(a.query(k), combined.query(k)) << k;
  EXPECT_EQ(a.total_count(), combined.total_count());
}

TEST(CountMin, MergeRejectsIncompatible) {
  CountMinSketch a({.depth = 4, .width = 64}, 1);
  CountMinSketch b({.depth = 4, .width = 65}, 1);
  CountMinSketch c({.depth = 4, .width = 64}, 2);  // different seed
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(CountMin, FromCellsRoundTrip) {
  CountMinSketch cms({.depth = 4, .width = 64}, 13);
  for (std::uint64_t k = 0; k < 30; ++k) cms.update(k, 2);
  const auto rebuilt = CountMinSketch::from_cells(
      cms.params(), cms.hash_seed(), cms.cells());
  for (std::uint64_t k = 0; k < 30; ++k)
    EXPECT_EQ(rebuilt.query(k), cms.query(k));
  EXPECT_EQ(rebuilt.total_count(), cms.total_count());
}

TEST(CountMin, FromCellsRejectsWrongSize) {
  const std::vector<std::uint32_t> cells(10, 0);
  EXPECT_THROW(
      CountMinSketch::from_cells({.depth = 4, .width = 64}, 1, cells),
      std::invalid_argument);
}

TEST(CountMin, SameSeedSameLayout) {
  CountMinSketch a({.depth = 4, .width = 64}, 21);
  CountMinSketch b({.depth = 4, .width = 64}, 21);
  a.update(99);
  b.update(99);
  const auto ca = a.cells();
  const auto cb = b.cells();
  EXPECT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin()));
}

TEST(CountMin, DifferentSeedDifferentLayout) {
  CountMinSketch a({.depth = 4, .width = 64}, 21);
  CountMinSketch b({.depth = 4, .width = 64}, 22);
  a.update(99);
  b.update(99);
  const auto ca = a.cells();
  const auto cb = b.cells();
  EXPECT_FALSE(std::equal(ca.begin(), ca.end(), cb.begin()));
}

TEST(CountMin, SizeBytesMatchesParams) {
  CountMinSketch cms({.depth = 3, .width = 100}, 1);
  EXPECT_EQ(cms.size_bytes(), 1200u);
}

TEST(CountMin, RejectsZeroDimensions) {
  EXPECT_THROW(CountMinSketch({.depth = 0, .width = 4}, 1),
               std::invalid_argument);
  EXPECT_THROW(CountMinSketch({.depth = 4, .width = 0}, 1),
               std::invalid_argument);
}

// Property sweep: monotonicity of the estimate in update count.
class CmsMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CmsMonotonicity, EstimateNondecreasing) {
  CountMinSketch cms({.depth = 4, .width = 32}, GetParam());
  std::uint32_t prev = 0;
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    cms.update(17);
    cms.update(rng.below(64));  // background noise
    const std::uint32_t est = cms.query(17);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmsMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(CountMinSketch, BatchedQueriesAgreeWithScalarQuery) {
  CountMinSketch cms({.depth = 4, .width = 57}, 11);
  util::Rng rng(31);
  for (int i = 0; i < 500; ++i) cms.update(rng.below(300));

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 300; ++k) keys.push_back(k);
  std::vector<std::uint32_t> via_many(keys.size());
  cms.query_many(keys, std::span<std::uint32_t>(via_many));
  std::vector<std::uint32_t> via_range(keys.size());
  cms.query_range(0, 300, std::span<std::uint32_t>(via_range));
  for (std::uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(via_many[k], cms.query(k)) << "key " << k;
    EXPECT_EQ(via_range[k], cms.query(k)) << "key " << k;
  }
}

TEST(CountMinSketch, BatchedQueriesRejectSizeMismatch) {
  CountMinSketch cms({.depth = 2, .width = 8}, 1);
  std::vector<std::uint64_t> keys(4);
  std::vector<std::uint32_t> out(3);
  EXPECT_THROW(cms.query_many(keys, std::span<std::uint32_t>(out)),
               std::invalid_argument);
  EXPECT_THROW(cms.query_range(0, 4, std::span<std::uint32_t>(out)),
               std::invalid_argument);
}

}  // namespace
}  // namespace eyw::sketch
