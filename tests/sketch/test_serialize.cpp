#include "sketch/serialize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eyw::sketch {
namespace {

CountMinSketch sample_sketch() {
  CountMinSketch cms({.depth = 3, .width = 16}, /*seed=*/42);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) cms.update(rng.below(50));
  return cms;
}

TEST(Serialize, SketchRoundTrip) {
  const CountMinSketch cms = sample_sketch();
  const auto bytes = encode_sketch(cms);
  EXPECT_EQ(bytes.size(), encoded_size(cms.params()));
  const DecodedFrame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::kPlainSketch);
  EXPECT_EQ(frame.params, cms.params());
  EXPECT_EQ(frame.hash_seed, 42u);
  const CountMinSketch back = sketch_from_frame(frame);
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_EQ(back.query(k), cms.query(k));
  EXPECT_EQ(back.total_count(), cms.total_count());
}

TEST(Serialize, BlindedReportRoundTrip) {
  const CmsParams params{.depth = 2, .width = 8};
  std::vector<std::uint32_t> cells(params.cells());
  util::Rng rng(2);
  for (auto& c : cells) c = static_cast<std::uint32_t>(rng.next());
  const auto bytes = encode_blinded_report(params, /*round=*/7, cells);
  const DecodedFrame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::kBlindedReport);
  EXPECT_EQ(frame.round, 7u);
  EXPECT_EQ(frame.cells, cells);
  // Blinded frames carry no seed and cannot be rebuilt into a sketch.
  EXPECT_EQ(frame.hash_seed, 0u);
  EXPECT_THROW((void)sketch_from_frame(frame), std::invalid_argument);
}

TEST(Serialize, EncodeRejectsGeometryMismatch) {
  const CmsParams params{.depth = 2, .width = 8};
  const std::vector<std::uint32_t> wrong(7);
  EXPECT_THROW((void)encode_blinded_report(params, 0, wrong),
               std::invalid_argument);
}

TEST(Serialize, DecodeRejectsBadMagic) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsBadVersion) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[4] = 99;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsUnknownKind) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[6] = 77;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsTruncationAtEveryByteBoundary) {
  // No prefix of a valid frame may decode: every cut must throw, and the
  // full frame must still parse (the loop bound is the proof it ran).
  const auto bytes = encode_sketch(sample_sketch());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        (void)decode_frame(std::span<const std::uint8_t>(bytes.data(), cut)),
        std::invalid_argument)
        << "cut=" << cut;
  }
  EXPECT_NO_THROW((void)decode_frame(bytes));
}

TEST(Serialize, DecodeRejectsOversizedCellCount) {
  // depth * width above kMaxFrameCells is refused before any allocation.
  auto bytes = encode_sketch(sample_sketch());
  const auto patch = [&](std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  };
  patch(8, 0x00010000u);   // depth 2^16
  patch(12, 0x00010000u);  // width 2^16 -> 2^32 cells
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsSizeArithmeticWraparound) {
  // Crafted header whose depth * width * 4 wraps std::size_t to 0, making
  // the expected frame size collide with a bare 32-byte header. Without
  // the cell-count cap this drove a 2^62-cell reserve from 32 bytes of
  // attacker input.
  std::vector<std::uint8_t> bytes = encode_sketch(sample_sketch());
  bytes.resize(32);  // header only
  const auto patch = [&](std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  };
  patch(8, 0x80000000u);   // depth 2^31
  patch(12, 0x80000000u);  // width 2^31 -> 2^62 cells, * 4 == 0 mod 2^64
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsTrailingGarbage) {
  auto bytes = encode_sketch(sample_sketch());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsDegenerateGeometry) {
  auto bytes = encode_sketch(sample_sketch());
  // Zero out the depth field (offset 8..11).
  for (int i = 8; i < 12; ++i) bytes[static_cast<std::size_t>(i)] = 0;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, EncodingIsByteStableAcrossRuns) {
  // Wire format must not depend on process state.
  EXPECT_EQ(encode_sketch(sample_sketch()), encode_sketch(sample_sketch()));
}

}  // namespace
}  // namespace eyw::sketch
