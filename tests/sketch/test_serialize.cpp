#include "sketch/serialize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eyw::sketch {
namespace {

CountMinSketch sample_sketch() {
  CountMinSketch cms({.depth = 3, .width = 16}, /*seed=*/42);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) cms.update(rng.below(50));
  return cms;
}

TEST(Serialize, SketchRoundTrip) {
  const CountMinSketch cms = sample_sketch();
  const auto bytes = encode_sketch(cms);
  EXPECT_EQ(bytes.size(), encoded_size(cms.params()));
  const DecodedFrame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::kPlainSketch);
  EXPECT_EQ(frame.params, cms.params());
  EXPECT_EQ(frame.hash_seed, 42u);
  const CountMinSketch back = sketch_from_frame(frame);
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_EQ(back.query(k), cms.query(k));
  EXPECT_EQ(back.total_count(), cms.total_count());
}

TEST(Serialize, BlindedReportRoundTrip) {
  const CmsParams params{.depth = 2, .width = 8};
  std::vector<std::uint32_t> cells(params.cells());
  util::Rng rng(2);
  for (auto& c : cells) c = static_cast<std::uint32_t>(rng.next());
  const auto bytes = encode_blinded_report(params, /*round=*/7, cells);
  const DecodedFrame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::kBlindedReport);
  EXPECT_EQ(frame.round, 7u);
  EXPECT_EQ(frame.cells, cells);
  // Blinded frames carry no seed and cannot be rebuilt into a sketch.
  EXPECT_EQ(frame.hash_seed, 0u);
  EXPECT_THROW((void)sketch_from_frame(frame), std::invalid_argument);
}

TEST(Serialize, EncodeRejectsGeometryMismatch) {
  const CmsParams params{.depth = 2, .width = 8};
  const std::vector<std::uint32_t> wrong(7);
  EXPECT_THROW((void)encode_blinded_report(params, 0, wrong),
               std::invalid_argument);
}

TEST(Serialize, DecodeRejectsBadMagic) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsBadVersion) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[4] = 99;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsUnknownKind) {
  auto bytes = encode_sketch(sample_sketch());
  bytes[6] = 77;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsTruncation) {
  const auto bytes = encode_sketch(sample_sketch());
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{10}, bytes.size() - 1}) {
    EXPECT_THROW(
        (void)decode_frame(std::span<const std::uint8_t>(bytes.data(), cut)),
        std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(Serialize, DecodeRejectsTrailingGarbage) {
  auto bytes = encode_sketch(sample_sketch());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, DecodeRejectsDegenerateGeometry) {
  auto bytes = encode_sketch(sample_sketch());
  // Zero out the depth field (offset 8..11).
  for (int i = 8; i < 12; ++i) bytes[static_cast<std::size_t>(i)] = 0;
  EXPECT_THROW((void)decode_frame(bytes), std::invalid_argument);
}

TEST(Serialize, EncodingIsByteStableAcrossRuns) {
  // Wire format must not depend on process state.
  EXPECT_EQ(encode_sketch(sample_sketch()), encode_sketch(sample_sketch()));
}

}  // namespace
}  // namespace eyw::sketch
