// Shared fixtures for the storage tests: a self-deleting journal
// directory and the small round geometry every suite reuses.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <stdlib.h>

#include "server/backend.hpp"

namespace eyw::storage {

/// mkdtemp under the working directory (CI sandboxes contain every byte
/// the tests write), removed with everything in it on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "eyw-storage-test.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Small geometry so finalize's id-space scan stays cheap in tests.
inline server::BackendConfig test_config() {
  return {.cms_params = {.depth = 2, .width = 32},
          .cms_hash_seed = 9,
          .id_space = 200,
          .users_rule = core::ThresholdRule::kMean};
}

/// Deterministic synthetic cells for participant `i` (wrapping arithmetic
/// makes any subset-sum reproducible, which is what recovery equality
/// tests lean on).
inline std::vector<crypto::BlindCell> test_cells(
    const server::BackendConfig& config, std::size_t i) {
  std::vector<crypto::BlindCell> cells(config.cms_params.cells());
  for (std::size_t c = 0; c < cells.size(); ++c)
    cells[c] = static_cast<crypto::BlindCell>(i * 2654435761u + c * 97u + 1u);
  return cells;
}

/// Field-by-field bit-identity of two round results.
inline bool results_identical(const server::RoundResult& a,
                              const server::RoundResult& b) {
  const auto ac = a.aggregate.cells();
  const auto bc = b.aggregate.cells();
  if (ac.size() != bc.size() || a.users_threshold != b.users_threshold ||
      a.distribution.counts() != b.distribution.counts() ||
      a.reports != b.reports || a.roster != b.roster)
    return false;
  for (std::size_t i = 0; i < ac.size(); ++i)
    if (ac[i] != bc[i]) return false;
  return true;
}

}  // namespace eyw::storage
