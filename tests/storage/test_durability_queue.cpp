// DurabilityQueue bounds: backpressure counts stalls but can never
// wedge a producer — in particular a payload larger than the whole byte
// bound must be admitted alone, not wait for room that cannot exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/durability_queue.hpp"
#include "storage/journal.hpp"
#include "storage_test_util.hpp"

namespace eyw::storage {
namespace {

std::vector<std::uint8_t> filled(std::size_t len, std::uint8_t byte) {
  return std::vector<std::uint8_t>(len, byte);
}

TEST(DurabilityQueue, RecordsReachJournalThroughGroupCommit) {
  TempDir tmp;
  {
    DurabilityQueue queue(std::make_unique<Journal>(tmp.path()));
    for (std::uint8_t i = 0; i < 8; ++i)
      EXPECT_EQ(queue.enqueue_record(filled(16, i)), i);
    queue.flush();
    const DurabilityStats stats = queue.stats();
    EXPECT_EQ(stats.records, 8u);
    EXPECT_EQ(stats.off_writer_io, 0u);
  }
  Journal reopened(tmp.path());
  std::uint64_t seen = 0;
  reopened.replay(0, [&](std::uint64_t index,
                         std::span<const std::uint8_t> payload) {
    EXPECT_EQ(index, seen++);
    ASSERT_EQ(payload.size(), 16u);
    EXPECT_EQ(payload[0], static_cast<std::uint8_t>(index));
  });
  EXPECT_EQ(seen, 8u);
}

TEST(DurabilityQueue, OversizedRecordAdmittedAloneNotLivelocked) {
  TempDir tmp;
  DurabilityQueue queue(std::make_unique<Journal>(tmp.path()),
                        {.max_pending_records = 4,
                         .max_pending_bytes = 1024});
  // 4 KiB against a 1 KiB byte bound: queued_bytes + size can never fit
  // under the bound, so only the empty-queue escape admits it. Without
  // that escape this call blocks forever.
  const std::uint64_t idx = queue.enqueue_record(filled(4096, 0xAB));
  queue.wait_durable(idx);
  const DurabilityStats stats = queue.stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.record_bytes, 4096u);

  // And the queue keeps working normally afterwards.
  queue.wait_durable(queue.enqueue_record(filled(16, 0x01)));
  EXPECT_EQ(queue.stats().records, 2u);
}

}  // namespace
}  // namespace eyw::storage
