// Wire-byte journal capture (zero-copy ingest): a DurableBackend handed
// the accepted frame's own bytes must journal them without re-encoding,
// and the journaled record must be bit-identical to what the legacy
// re-encode path would have written — the journal format is frozen.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "proto/message.hpp"
#include "server/backend.hpp"
#include "server/durable_backend.hpp"
#include "server/endpoint.hpp"
#include "storage/journal.hpp"
#include "storage_test_util.hpp"

namespace eyw::storage {
namespace {

std::vector<std::uint8_t> report_frame(const server::BackendConfig& config,
                                       std::size_t participant,
                                       std::uint64_t round) {
  return proto::BlindedReport{
      .participant = static_cast<std::uint32_t>(participant),
      .params = config.cms_params,
      .cells = test_cells(config, participant)}
      .encode(round);
}

std::vector<std::uint8_t> adjustment_frame(const server::BackendConfig& config,
                                           std::size_t participant,
                                           std::uint64_t round) {
  return proto::Adjustment{
      .participant = static_cast<std::uint32_t>(participant),
      .params = config.cms_params,
      .cells = test_cells(config, participant + 50)}
      .encode(round);
}

/// Every journaled record with index >= `from`, payload bytes copied out.
std::vector<std::vector<std::uint8_t>> journal_records(const std::string& dir,
                                                       std::uint64_t from) {
  Journal journal(dir);
  std::vector<std::vector<std::uint8_t>> records;
  (void)journal.replay(from, [&](std::uint64_t,
                                 std::span<const std::uint8_t> payload) {
    records.emplace_back(payload.begin(), payload.end());
  });
  return records;
}

TEST(FrameCapture, CapturedSubmissionsJournalWithoutReencoding) {
  TempDir tmp;
  const server::BackendConfig config = test_config();
  server::BackendServer inner(config);
  server::DurableBackend durable(
      inner, {.dir = tmp.path(), .verify_captured_frames = true});
  durable.begin_round(3, 4);

  // verify_captured_frames re-encodes inside the backend and throws on
  // any byte difference, so a passing submit IS the bit-identity check.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<std::uint8_t> frame = report_frame(config, i, 3);
    const proto::Envelope env = proto::decode_envelope(frame);
    proto::BlindedReport report = proto::BlindedReport::decode(env);
    durable.submit_report_frame(i, std::move(report.cells), frame);
  }
  const std::vector<std::uint8_t> adj = adjustment_frame(config, 1, 3);
  {
    const proto::Envelope env = proto::decode_envelope(adj);
    proto::Adjustment adjustment = proto::Adjustment::decode(env);
    durable.submit_adjustment_frame(1, std::move(adjustment.cells), adj);
  }
  EXPECT_EQ(durable.journal_reencodes(), 0u);
  durable.shutdown();
}

TEST(FrameCapture, CapturedAndLegacyPathsJournalIdenticalBytes) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 7;
  constexpr std::size_t kRoster = 3;

  TempDir captured_dir;
  TempDir legacy_dir;
  {
    server::BackendServer inner(config);
    server::DurableBackend durable(inner, {.dir = captured_dir.path()});
    durable.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < kRoster; ++i) {
      const std::vector<std::uint8_t> frame = report_frame(config, i, kRound);
      durable.submit_report_frame(i, test_cells(config, i), frame);
    }
    EXPECT_EQ(durable.journal_reencodes(), 0u);
    durable.shutdown();
  }
  {
    server::BackendServer inner(config);
    server::DurableBackend durable(inner, {.dir = legacy_dir.path()});
    durable.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < kRoster; ++i)
      durable.submit_report(i, test_cells(config, i));
    EXPECT_EQ(durable.journal_reencodes(), kRoster);
    durable.shutdown();
  }

  // The frozen journal contract: frame capture changes how the record's
  // bytes are produced, never what they are. The journal only ever holds
  // submissions (checkpoints live in their own files), so replaying from
  // 0 compares the complete record streams.
  const auto captured = journal_records(captured_dir.path(), 0);
  const auto legacy = journal_records(legacy_dir.path(), 0);
  ASSERT_EQ(captured.size(), legacy.size());
  for (std::size_t i = 0; i < captured.size(); ++i)
    EXPECT_EQ(captured[i], legacy[i]) << "record " << i;
}

TEST(FrameCapture, EndpointWiresRawFrameThroughToJournalCapture) {
  TempDir tmp;
  const server::BackendConfig config = test_config();
  server::BackendServer inner(config);
  server::DurableBackend durable(
      inner, {.dir = tmp.path(), .verify_captured_frames = true});
  server::BackendEndpoint endpoint(durable, nullptr, /*serve_control=*/true);

  ASSERT_EQ(proto::peek_kind(endpoint.handle(
                proto::BeginRound{.roster = 2}.encode(1))),
            proto::MsgKind::kAck);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::vector<std::uint8_t> frame = report_frame(config, i, 1);
    EXPECT_EQ(proto::peek_kind(endpoint.handle(frame)), proto::MsgKind::kAck)
        << "participant " << i;
  }
  // The whole point of env.raw: an endpoint-served submission never takes
  // the re-encode path.
  EXPECT_EQ(durable.journal_reencodes(), 0u);
  durable.shutdown();
}

}  // namespace
}  // namespace eyw::storage
