// The write-ahead journal's on-disk contract: append/replay roundtrips,
// segment rotation, torn-tail truncation on reopen, checkpoint-driven
// truncation, index reservation, and the single-writer I/O invariant.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/journal.hpp"
#include "storage_test_util.hpp"

namespace eyw::storage {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> payload_for(std::size_t i, std::size_t len) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t b = 0; b < len; ++b)
    p[b] = static_cast<std::uint8_t>(i * 31 + b);
  return p;
}

std::size_t segment_count(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".seg") ++n;
  return n;
}

/// Append raw bytes to the single tail segment (simulating the partial
/// write a crash leaves behind — the journal handle must be closed).
void append_raw_to_tail(const std::string& dir,
                        const std::vector<std::uint8_t>& bytes) {
  std::string tail;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".seg" &&
        (tail.empty() || entry.path().string() > tail))
      tail = entry.path().string();
  ASSERT_FALSE(tail.empty());
  const int fd = ::open(tail.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

TEST(Journal, FreshDirectoryStartsEmpty) {
  TempDir tmp;
  Journal journal(tmp.path());
  EXPECT_EQ(journal.next_index(), 0u);
  const auto stats =
      journal.replay(0, [](std::uint64_t, std::span<const std::uint8_t>) {
        FAIL() << "no records expected";
      });
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_TRUE(stats.clean);
}

TEST(Journal, AppendSyncReplayRoundtrip) {
  TempDir tmp;
  Journal journal(tmp.path());
  constexpr std::size_t kRecords = 20;
  for (std::size_t i = 0; i < kRecords; ++i)
    EXPECT_EQ(journal.append(payload_for(i, 5 + i)), i);
  journal.sync();

  std::uint64_t seen = 0;
  const auto stats = journal.replay(
      0, [&](std::uint64_t index, std::span<const std::uint8_t> payload) {
        EXPECT_EQ(index, seen);
        const auto want = payload_for(index, 5 + index);
        ASSERT_EQ(payload.size(), want.size());
        EXPECT_TRUE(std::equal(payload.begin(), payload.end(), want.begin()));
        ++seen;
      });
  EXPECT_EQ(seen, kRecords);
  EXPECT_EQ(stats.records, kRecords);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_TRUE(stats.clean);
}

TEST(Journal, ReplayFromSkipsCoveredPrefix) {
  TempDir tmp;
  Journal journal(tmp.path());
  for (std::size_t i = 0; i < 10; ++i) journal.append(payload_for(i, 8));
  std::vector<std::uint64_t> indices;
  journal.replay(7, [&](std::uint64_t index, std::span<const std::uint8_t>) {
    indices.push_back(index);
  });
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(Journal, IndexSurvivesReopen) {
  TempDir tmp;
  {
    Journal journal(tmp.path());
    for (std::size_t i = 0; i < 6; ++i) journal.append(payload_for(i, 16));
    journal.sync();
  }
  Journal reopened(tmp.path());
  EXPECT_EQ(reopened.next_index(), 6u);
  EXPECT_EQ(reopened.append(payload_for(6, 16)), 6u);
  const auto stats = reopened.replay(
      0, [](std::uint64_t, std::span<const std::uint8_t>) {});
  EXPECT_EQ(stats.records, 7u);
  EXPECT_TRUE(stats.clean);
}

TEST(Journal, RefusesEmptyAndOversizedRecords) {
  TempDir tmp;
  Journal journal(tmp.path(), {.max_record_bytes = 64});
  EXPECT_THROW(journal.append({}), std::invalid_argument);
  EXPECT_THROW(journal.append(payload_for(0, 65)), std::invalid_argument);
  EXPECT_EQ(journal.next_index(), 0u);  // refused appends consume nothing
  EXPECT_EQ(journal.append(payload_for(0, 64)), 0u);
}

TEST(Journal, RotatesSegmentsAndReplaysAcrossThem) {
  TempDir tmp;
  // Tiny segments: every record (8 B header + 24 B payload) overflows the
  // 64 B bound, so each append after the first rotates.
  Journal journal(tmp.path(), {.segment_bytes = 64});
  constexpr std::size_t kRecords = 9;
  for (std::size_t i = 0; i < kRecords; ++i) journal.append(payload_for(i, 24));
  journal.sync();
  EXPECT_GT(segment_count(tmp.path()), 1u);

  std::uint64_t seen = 0;
  const auto stats = journal.replay(
      0, [&](std::uint64_t index, std::span<const std::uint8_t> payload) {
        EXPECT_EQ(index, seen++);
        EXPECT_EQ(payload.size(), 24u);
      });
  EXPECT_EQ(stats.records, kRecords);
  EXPECT_TRUE(stats.clean);

  // And the rotated stream reopens where it left off.
  Journal reopened(tmp.path(), {.segment_bytes = 64});
  EXPECT_EQ(reopened.next_index(), kRecords);
}

TEST(Journal, RotationSyncsOutgoingSegmentBeforeRetiringIt) {
  TempDir tmp;
  Journal journal(tmp.path(), {.segment_bytes = 64});
  for (std::size_t i = 0; i < 3; ++i) journal.append(payload_for(i, 24));
  ASSERT_GT(segment_count(tmp.path()), 1u);
  // sync() can only reach the fd it holds: once a segment is rotated
  // away it is unreachable, so the rotation itself must have fdatasynced
  // it — otherwise a group commit spanning the rotation would publish
  // records as durable that only the page cache holds.
  EXPECT_GE(journal.data_syncs(), 1u);
}

TEST(Journal, TornTailTruncatedOnReopen) {
  TempDir tmp;
  {
    Journal journal(tmp.path());
    for (std::size_t i = 0; i < 4; ++i) journal.append(payload_for(i, 12));
    journal.sync();
  }
  // A record header claiming 50 payload bytes followed by only 5 — the
  // shape a kill -9 mid-append leaves.
  append_raw_to_tail(tmp.path(),
                     {50, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 1, 2, 3, 4, 5});

  Journal reopened(tmp.path());
  EXPECT_EQ(reopened.next_index(), 4u);  // the torn record never happened
  EXPECT_EQ(reopened.append(payload_for(4, 12)), 4u);
  std::uint64_t seen = 0;
  const auto stats = reopened.replay(
      0, [&](std::uint64_t index, std::span<const std::uint8_t> payload) {
        EXPECT_EQ(index, seen++);
        const auto want = payload_for(index, 12);
        EXPECT_TRUE(std::equal(payload.begin(), payload.end(), want.begin()));
      });
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.torn_bytes, 0u);  // reopen already cut the damage away
  EXPECT_TRUE(stats.clean);
}

TEST(Journal, ZeroedPreallocationIsNotARecord) {
  TempDir tmp;
  {
    Journal journal(tmp.path());
    journal.append(payload_for(0, 12));
    journal.sync();
  }
  // A zero-filled region (filesystem preallocation surviving a crash)
  // must parse as a torn tail, never as valid empty records.
  append_raw_to_tail(tmp.path(), std::vector<std::uint8_t>(64, 0));
  Journal reopened(tmp.path());
  EXPECT_EQ(reopened.next_index(), 1u);
}

TEST(Journal, MidStreamDamageReportedUnclean) {
  TempDir tmp;
  {
    Journal journal(tmp.path(), {.segment_bytes = 64});
    for (std::size_t i = 0; i < 4; ++i) journal.append(payload_for(i, 24));
    journal.sync();
  }
  // Flip a payload byte in the FIRST segment: damage before the tail
  // means records were lost mid-stream — replay must say so.
  std::string first;
  for (const auto& entry : fs::directory_iterator(tmp.path()))
    if (entry.path().extension() == ".seg" &&
        (first.empty() || entry.path().string() < first))
      first = entry.path().string();
  {
    const int fd = ::open(first.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint8_t byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, 16 + 8 + 3), 1);  // a payload byte
    byte ^= 0x40;
    ASSERT_EQ(::pwrite(fd, &byte, 1, 16 + 8 + 3), 1);
    ::close(fd);
  }
  Journal reopened(tmp.path(), {.segment_bytes = 64});
  const auto stats = reopened.replay(
      0, [](std::uint64_t, std::span<const std::uint8_t>) {});
  EXPECT_FALSE(stats.clean);
  EXPECT_LT(stats.records, 4u);
}

TEST(Journal, TruncateThroughDeletesCoveredSegments) {
  TempDir tmp;
  Journal journal(tmp.path(), {.segment_bytes = 64});
  for (std::size_t i = 0; i < 9; ++i) journal.append(payload_for(i, 24));
  journal.sync();
  const std::size_t before = segment_count(tmp.path());
  ASSERT_GT(before, 2u);

  journal.truncate_through(journal.next_index());
  // Everything covered, but the active tail must survive: it carries the
  // on-disk base for the next append.
  EXPECT_EQ(segment_count(tmp.path()), 1u);
  EXPECT_EQ(journal.next_index(), 9u);

  // Appends continue seamlessly and replay sees only the surviving tail.
  journal.append(payload_for(9, 24));
  std::vector<std::uint64_t> indices;
  journal.replay(9, [&](std::uint64_t index, std::span<const std::uint8_t>) {
    indices.push_back(index);
  });
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{9}));
}

TEST(Journal, TruncatePartialCoverageKeepsUncoveredSegments) {
  TempDir tmp;
  Journal journal(tmp.path(), {.segment_bytes = 64});
  for (std::size_t i = 0; i < 9; ++i) journal.append(payload_for(i, 24));
  journal.sync();
  const std::size_t before = segment_count(tmp.path());
  journal.truncate_through(2);  // covers at most the first segments
  const std::size_t after = segment_count(tmp.path());
  EXPECT_LT(after, before);
  // Records >= 2 still replay.
  std::uint64_t seen = 0;
  journal.replay(2, [&](std::uint64_t, std::span<const std::uint8_t>) {
    ++seen;
  });
  EXPECT_EQ(seen, 7u);
}

TEST(Journal, ReserveThroughOpensFreshSegmentAtNewBase) {
  TempDir tmp;
  Journal journal(tmp.path());
  journal.append(payload_for(0, 8));
  journal.append(payload_for(1, 8));
  journal.reserve_through(10);
  EXPECT_EQ(journal.next_index(), 10u);
  journal.reserve_through(3);  // never moves backwards
  EXPECT_EQ(journal.next_index(), 10u);
  EXPECT_EQ(journal.append(payload_for(10, 8)), 10u);
  // The reserved range exists in no segment: a reopen agrees on the base.
  Journal reopened(tmp.path());
  EXPECT_EQ(reopened.next_index(), 11u);
}

TEST(Journal, ReservedGapBelowReplayFromIsNotDamage) {
  TempDir tmp;
  Journal journal(tmp.path());
  journal.append(payload_for(0, 8));
  journal.append(payload_for(1, 8));
  journal.sync();
  // The recovery shape: a checkpoint covers indices [0, 10) of which the
  // journal only ever held 0..1, so appends resume at 10 in a fresh
  // segment — leaving an index gap between the two segments.
  journal.reserve_through(10);
  journal.append(payload_for(10, 8));
  journal.sync();

  // Replaying from the checkpoint boundary: the gap sits entirely under
  // checkpoint coverage, so it is the reservation, not lost records.
  auto stats = journal.replay(
      10, [](std::uint64_t, std::span<const std::uint8_t>) {});
  EXPECT_EQ(stats.records, 1u);
  EXPECT_TRUE(stats.clean);

  // Without checkpoint coverage the same gap IS missing records.
  stats =
      journal.replay(0, [](std::uint64_t, std::span<const std::uint8_t>) {});
  EXPECT_FALSE(stats.clean);
}

TEST(Journal, OffThreadIoCounterCatchesForeignThreads) {
  TempDir tmp;
  Journal journal(tmp.path());
  journal.bind_io_thread(std::this_thread::get_id());
  journal.append(payload_for(0, 8));
  journal.sync();
  EXPECT_EQ(journal.off_thread_io(), 0u);  // the bound thread is free

  std::thread intruder([&] { journal.append(payload_for(1, 8)); });
  intruder.join();
  EXPECT_EQ(journal.off_thread_io(), 1u);
}

}  // namespace
}  // namespace eyw::storage
