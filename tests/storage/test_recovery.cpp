// Crash recovery end to end: checkpoint restore + journal-tail replay must
// rebuild the exact in-flight round — including through a real kill -9 of
// a forked process mid-round — and recovered rounds must keep refusing
// everything a live round would refuse.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "proto/message.hpp"
#include "server/cluster.hpp"
#include "server/durable_backend.hpp"
#include "storage/checkpoint.hpp"
#include "storage/journal.hpp"
#include "storage/recovery.hpp"
#include "storage_test_util.hpp"

namespace eyw::storage {
namespace {

std::vector<std::uint8_t> report_frame(const server::BackendConfig& config,
                                       std::size_t participant,
                                       std::uint64_t round) {
  return proto::BlindedReport{
      .participant = static_cast<std::uint32_t>(participant),
      .params = config.cms_params,
      .cells = test_cells(config, participant)}
      .encode(round);
}

std::vector<std::uint8_t> adjustment_frame(const server::BackendConfig& config,
                                           std::size_t participant,
                                           std::uint64_t round) {
  auto cells = test_cells(config, participant + 100);
  return proto::Adjustment{
      .participant = static_cast<std::uint32_t>(participant),
      .params = config.cms_params,
      .cells = std::move(cells)}
      .encode(round);
}

TEST(Recovery, FreshDirectoryRecoversNothing) {
  TempDir tmp;
  server::BackendServer backend(test_config());
  Journal journal(tmp.path());
  const RecoveryReport report = recover_round(journal, backend);
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.records_refused, 0u);
  EXPECT_TRUE(report.journal_clean);
  EXPECT_EQ(backend.current_round(), 0u);
}

TEST(Recovery, RecordsWithoutCheckpointThrow) {
  TempDir tmp;
  const server::BackendConfig config = test_config();
  {
    Journal journal(tmp.path());
    journal.append(report_frame(config, 0, 2));
    journal.sync();
  }
  // Records with no base state: a DurableBackend writes the round anchor
  // before journaling anything, so this directory is damaged — recovery
  // must stop, not guess a roster.
  server::BackendServer backend(config);
  Journal journal(tmp.path());
  EXPECT_THROW((void)recover_round(journal, backend), std::runtime_error);
}

TEST(Recovery, CheckpointPlusTailReplayMatchesUninterrupted) {
  const server::BackendConfig config = test_config();
  constexpr std::size_t kRoster = 8;
  constexpr std::uint64_t kRound = 2;

  // Control: the same round, never interrupted.
  server::BackendServer control(config);
  control.begin_round(kRound, kRoster);
  for (std::size_t i = 0; i < kRoster; ++i)
    control.submit_report(i, test_cells(config, i));
  const server::RoundResult want = control.finalize_round();

  // Crash scene: a checkpoint capturing reports 0..3 plus journaled
  // frames for 4 and 5 (the tail the checkpoint does not cover).
  TempDir tmp;
  {
    server::BackendServer staging(config);
    staging.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < 4; ++i)
      staging.submit_report(i, test_cells(config, i));
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/0}));
    Journal journal(tmp.path());
    journal.append(report_frame(config, 4, kRound));
    journal.append(report_frame(config, 5, kRound));
    journal.sync();
  }

  server::BackendServer recovered(config);
  Journal journal(tmp.path());
  const RecoveryReport report = recover_round(journal, recovered);
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.round, kRound);
  EXPECT_EQ(report.roster, kRoster);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.records_refused, 0u);
  EXPECT_TRUE(report.journal_clean);

  // The recovered round knows exactly who is missing, then finishes
  // bit-identical to the uninterrupted control.
  EXPECT_EQ(recovered.missing_participants(),
            (std::vector<std::size_t>{6, 7}));
  recovered.submit_report(6, test_cells(config, 6));
  recovered.submit_report(7, test_cells(config, 7));
  EXPECT_TRUE(results_identical(want, recovered.finalize_round()));
}

TEST(Recovery, OverlappingRecordsRefusedNotDoubleCounted) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 3;
  TempDir tmp;
  {
    server::BackendServer staging(config);
    staging.begin_round(kRound, 5);
    for (std::size_t i = 0; i < 4; ++i)
      staging.submit_report(i, test_cells(config, i));
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/0}));
    Journal journal(tmp.path());
    // Record 0 duplicates a report the checkpoint already covers — the
    // overlap a crash between append and truncation leaves behind.
    journal.append(report_frame(config, 3, kRound));
    journal.append(report_frame(config, 4, kRound));
    journal.sync();
  }

  server::BackendServer recovered(config);
  Journal journal(tmp.path());
  const RecoveryReport report = recover_round(journal, recovered);
  EXPECT_EQ(report.records_replayed, 1u);
  EXPECT_EQ(report.records_refused, 1u);
  EXPECT_EQ(recovered.reports_received(), 5u);  // 3 was not double-counted

  server::BackendServer control(config);
  control.begin_round(kRound, 5);
  for (std::size_t i = 0; i < 5; ++i)
    control.submit_report(i, test_cells(config, i));
  EXPECT_TRUE(
      results_identical(control.finalize_round(), recovered.finalize_round()));
}

TEST(Recovery, WrongRoundRecordsRefused) {
  const server::BackendConfig config = test_config();
  TempDir tmp;
  {
    server::BackendServer staging(config);
    staging.begin_round(2, 4);
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/0}));
    Journal journal(tmp.path());
    journal.append(report_frame(config, 0, /*round=*/9));  // stale frame
    journal.sync();
  }
  server::BackendServer recovered(config);
  Journal journal(tmp.path());
  const RecoveryReport report = recover_round(journal, recovered);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.records_refused, 1u);
  EXPECT_EQ(recovered.reports_received(), 0u);
}

TEST(Recovery, AdjustmentRecordsReplay) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 4;
  constexpr std::size_t kRoster = 6;

  server::BackendServer control(config);
  control.begin_round(kRound, kRoster);
  for (std::size_t i = 0; i < 4; ++i)
    control.submit_report(i, test_cells(config, i));
  // Clients 4 and 5 are missing, so finalize requires an adjustment from
  // every reporter.
  for (std::size_t i = 0; i < 4; ++i)
    control.submit_adjustment(i, test_cells(config, 100 + i));
  const server::RoundResult want = control.finalize_round();

  TempDir tmp;
  {
    server::BackendServer staging(config);
    staging.begin_round(kRound, kRoster);
    staging.submit_report(0, test_cells(config, 0));
    staging.submit_report(1, test_cells(config, 1));
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/0}));
    Journal journal(tmp.path());
    journal.append(report_frame(config, 2, kRound));
    journal.append(report_frame(config, 3, kRound));
    journal.append(adjustment_frame(config, 0, kRound));
    journal.append(adjustment_frame(config, 1, kRound));
    journal.sync();
  }

  server::BackendServer recovered(config);
  Journal journal(tmp.path());
  const RecoveryReport report = recover_round(journal, recovered);
  EXPECT_EQ(report.records_replayed, 4u);
  EXPECT_EQ(recovered.reports_received(), 4u);
  EXPECT_EQ(recovered.adjustments_received(), 2u);
  // The remaining adjustments arrive after recovery, through the normal
  // path — mixed pre-crash/post-crash adjustments must still finalize
  // bit-identical.
  recovered.submit_adjustment(2, test_cells(config, 102));
  recovered.submit_adjustment(3, test_cells(config, 103));
  EXPECT_TRUE(results_identical(want, recovered.finalize_round()));
}

TEST(Recovery, ReservedIndexGapStaysCleanAcrossRecoveries) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 7;
  constexpr std::size_t kRoster = 5;
  TempDir tmp;
  {
    // A checkpoint whose journal_next (3) exceeds the records the journal
    // ever held (0..1): the shape a crash leaves when coverage outran the
    // durable tail.
    server::BackendServer staging(config);
    staging.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < 3; ++i)
      staging.submit_report(i, test_cells(config, i));
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/3}));
    Journal journal(tmp.path());
    journal.append(report_frame(config, 0, kRound));
    journal.append(report_frame(config, 1, kRound));
    journal.sync();
  }

  // First recovery reserves through 3; the next accepted report lands in
  // a fresh segment based at 3, leaving an index gap behind it.
  {
    server::BackendServer backend(config);
    Journal journal(tmp.path());
    const RecoveryReport first = recover_round(journal, backend);
    EXPECT_TRUE(first.journal_clean);
    EXPECT_EQ(journal.next_index(), 3u);
    journal.append(report_frame(config, 3, kRound));
    journal.sync();
  }

  // A second recovery sees that gap — it is the reservation recovery
  // itself created, and must not read as mid-stream damage.
  server::BackendServer backend(config);
  Journal journal(tmp.path());
  const RecoveryReport second = recover_round(journal, backend);
  EXPECT_TRUE(second.journal_clean);
  EXPECT_EQ(second.records_replayed, 1u);
  EXPECT_EQ(backend.reports_received(), 4u);
}

TEST(Recovery, ClusterRecoversSameRoundAsSingleServer) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 5;
  constexpr std::size_t kRoster = 9;
  TempDir tmp;
  {
    server::BackendServer staging(config);
    staging.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < 5; ++i)
      staging.submit_report(i, test_cells(config, i));
    write_checkpoint_file(
        tmp.path(),
        encode_checkpoint({staging.snapshot_round(), /*journal_next=*/0}));
    Journal journal(tmp.path());
    journal.append(report_frame(config, 5, kRound));
    journal.append(report_frame(config, 6, kRound));
    journal.sync();
  }

  // The same directory recovers into a single server and a 3-shard
  // cluster; sharding is a deployment choice, so the rounds must agree
  // bit for bit.
  server::BackendServer single(config);
  server::BackendCluster cluster(config, 3);
  {
    Journal journal(tmp.path());
    (void)recover_round(journal, single);
  }
  {
    Journal journal(tmp.path());
    (void)recover_round(journal, cluster);
  }
  EXPECT_EQ(cluster.missing_participants(), single.missing_participants());
  for (std::size_t i = 7; i < kRoster; ++i) {
    single.submit_report(i, test_cells(config, i));
    cluster.submit_report(i, test_cells(config, i));
  }
  EXPECT_TRUE(
      results_identical(single.finalize_round(), cluster.finalize_round()));
}

TEST(Recovery, DurableBackendGracefulRestartResumesFinalizedState) {
  const server::BackendConfig config = test_config();
  TempDir tmp;
  const std::string dir = tmp.path() + "/journal";

  {
    server::BackendServer inner(config);
    server::DurableBackend durable(inner, {.dir = dir});
    durable.begin_round(6, 4);
    for (std::size_t i = 0; i < 4; ++i)
      durable.submit_report(i, test_cells(config, i));
    const server::RoundResult first_result = durable.finalize_round();
    EXPECT_EQ(first_result.reports, 4u);
    EXPECT_EQ(durable.stats().off_writer_io, 0u);  // no hot-path file I/O
    durable.shutdown();
  }

  // Restart: the post-round checkpoint restores the completed round (not
  // a replay of it) and the next round proceeds normally.
  server::BackendServer inner(config);
  server::DurableBackend durable(inner, {.dir = dir});
  EXPECT_TRUE(durable.recovery().checkpoint_loaded);
  EXPECT_EQ(durable.recovery().round, 6u);
  EXPECT_EQ(durable.recovery().records_replayed, 0u);
  EXPECT_TRUE(durable.missing_participants().empty());

  durable.begin_round(7, 2);
  durable.submit_report(0, test_cells(config, 0));
  durable.submit_report(1, test_cells(config, 1));
  const server::RoundResult next = durable.finalize_round();
  EXPECT_EQ(next.reports, 2u);
}

// The satellite the subsystem exists for: a forked process running a
// DurableBackend is SIGKILLed mid-round (after more than half the roster
// reported, every ack durable), and a fresh process on the same directory
// finishes the round bit-identical to an uninterrupted control.
TEST(Recovery, DurableBackendSurvivesKill9MidRound) {
  const server::BackendConfig config = test_config();
  constexpr std::uint64_t kRound = 8;
  constexpr std::size_t kRoster = 10;
  constexpr std::size_t kBeforeKill = 6;  // > half the roster
  TempDir tmp;
  const std::string dir = tmp.path() + "/journal";

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: accept kBeforeKill reports with ack ⇒ fsynced, then die the
    // hard way — no destructors, no flush, no checkpoint.
    server::BackendServer inner(config);
    server::DurableBackend durable(
        inner, {.dir = dir, .sync_each_submit = true});
    durable.begin_round(kRound, kRoster);
    for (std::size_t i = 0; i < kBeforeKill; ++i)
      durable.submit_report(i, test_cells(config, i));
    ::kill(::getpid(), SIGKILL);
    ::_exit(106);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  server::BackendServer inner(config);
  server::DurableBackend durable(inner, {.dir = dir});
  EXPECT_TRUE(durable.recovery().checkpoint_loaded);
  EXPECT_EQ(durable.recovery().round, kRound);
  EXPECT_EQ(durable.recovery().records_replayed, kBeforeKill);
  EXPECT_TRUE(durable.recovery().journal_clean);
  EXPECT_EQ(durable.current_round(), kRound);
  EXPECT_EQ(durable.missing_participants().size(), kRoster - kBeforeKill);

  // The recovered round still refuses duplicates of pre-crash reports.
  EXPECT_THROW(durable.submit_report(0, test_cells(config, 0)),
               std::invalid_argument);

  for (std::size_t i = kBeforeKill; i < kRoster; ++i)
    durable.submit_report(i, test_cells(config, i));
  const server::RoundResult got = durable.finalize_round();

  server::BackendServer control(config);
  control.begin_round(kRound, kRoster);
  for (std::size_t i = 0; i < kRoster; ++i)
    control.submit_report(i, test_cells(config, i));
  EXPECT_TRUE(results_identical(control.finalize_round(), got));
  EXPECT_EQ(durable.stats().off_writer_io, 0u);
}

}  // namespace
}  // namespace eyw::storage
