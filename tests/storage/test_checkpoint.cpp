// Checkpoint robustness: encode/decode roundtrips, exhaustive truncation
// and bit-flip corruption (every damaged input must throw, never yield
// partial state), and the atomic install / prev-fallback protocol.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/checkpoint.hpp"
#include "storage_test_util.hpp"

namespace eyw::storage {
namespace {

CheckpointData sample_data() {
  const server::BackendConfig config = test_config();
  server::RoundSnapshot snapshot;
  snapshot.round = 7;
  snapshot.roster = 9;
  snapshot.bytes_received = 1234;
  snapshot.params = config.cms_params;
  snapshot.base_cells.resize(config.cms_params.cells());
  for (std::size_t i = 0; i < snapshot.base_cells.size(); ++i)
    snapshot.base_cells[i] = static_cast<crypto::BlindCell>(i * 7919u + 3u);
  snapshot.reporters = {0, 2, 5, 8};
  snapshot.adjusters = {2, 5};
  return {std::move(snapshot), /*journal_next=*/42};
}

void expect_equal(const CheckpointData& want, const CheckpointData& got) {
  EXPECT_EQ(got.snapshot.round, want.snapshot.round);
  EXPECT_EQ(got.snapshot.roster, want.snapshot.roster);
  EXPECT_EQ(got.snapshot.bytes_received, want.snapshot.bytes_received);
  EXPECT_EQ(got.snapshot.params, want.snapshot.params);
  EXPECT_EQ(got.snapshot.reporters, want.snapshot.reporters);
  EXPECT_EQ(got.snapshot.adjusters, want.snapshot.adjusters);
  EXPECT_EQ(got.journal_next, want.journal_next);
  // An empty base encodes as explicit zeros; both mean "all-zero sum".
  std::vector<crypto::BlindCell> want_cells = want.snapshot.base_cells;
  if (want_cells.empty())
    want_cells.assign(want.snapshot.params.cells(), 0);
  std::vector<crypto::BlindCell> got_cells = got.snapshot.base_cells;
  if (got_cells.empty()) got_cells.assign(got.snapshot.params.cells(), 0);
  EXPECT_EQ(got_cells, want_cells);
}

TEST(Checkpoint, EncodeDecodeRoundtrip) {
  const CheckpointData data = sample_data();
  expect_equal(data, decode_checkpoint(encode_checkpoint(data)));
}

TEST(Checkpoint, EmptyRoundRoundtrip) {
  CheckpointData data;
  data.snapshot.round = 1;
  data.snapshot.roster = 4;
  data.snapshot.params = test_config().cms_params;
  // base_cells empty = no submissions folded in yet (the round anchor).
  expect_equal(data, decode_checkpoint(encode_checkpoint(data)));
}

TEST(Checkpoint, EveryTruncationFailsCleanly) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(sample_data());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)decode_checkpoint(std::span(bytes.data(), len)),
        std::invalid_argument)
        << "truncation to " << len << " of " << bytes.size() << " decoded";
  }
}

TEST(Checkpoint, TrailingGarbageRefused) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(sample_data());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_checkpoint(bytes), std::invalid_argument);
}

TEST(Checkpoint, EveryBitFlipFailsCleanly) {
  const std::vector<std::uint8_t> good = encode_checkpoint(sample_data());
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = good;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)decode_checkpoint(bad), std::invalid_argument)
          << "flip of byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(Checkpoint, WriteThenLoadRoundtrip) {
  TempDir tmp;
  const CheckpointData data = sample_data();
  write_checkpoint_file(tmp.path(), encode_checkpoint(data));
  std::string error;
  const auto loaded = load_checkpoint(tmp.path(), &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(error.empty());
  expect_equal(data, *loaded);
}

TEST(Checkpoint, EmptyDirectoryIsFreshNotDamaged) {
  TempDir tmp;
  std::string error;
  EXPECT_FALSE(load_checkpoint(tmp.path(), &error).has_value());
  EXPECT_TRUE(error.empty());  // "nothing there" != "nothing decodes"
}

TEST(Checkpoint, InstallRotatesAndFallsBackToPrev) {
  TempDir tmp;
  CheckpointData first = sample_data();
  first.journal_next = 10;
  write_checkpoint_file(tmp.path(), encode_checkpoint(first));
  CheckpointData second = sample_data();
  second.journal_next = 20;
  write_checkpoint_file(tmp.path(), encode_checkpoint(second));

  // Newest wins while it decodes...
  auto loaded = load_checkpoint(tmp.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->journal_next, 20u);

  // ...and a half-written install (damaged .ckpt) falls back to .prev
  // instead of failing recovery.
  const std::string ckpt = tmp.path() + "/" + kCheckpointName;
  {
    const int fd = ::open(ckpt.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint8_t byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, 12), 1);
    byte ^= 0x01;
    ASSERT_EQ(::pwrite(fd, &byte, 1, 12), 1);
    ::close(fd);
  }
  std::string error;
  loaded = load_checkpoint(tmp.path(), &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->journal_next, 10u);

  // With BOTH damaged the caller must see "damaged", not "fresh".
  const std::string prev = tmp.path() + "/" + kCheckpointPrevName;
  std::filesystem::remove(prev);
  std::filesystem::copy_file(ckpt, prev);
  error.clear();
  EXPECT_FALSE(load_checkpoint(tmp.path(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace eyw::storage
