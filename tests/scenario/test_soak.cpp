// Soak scenario, test-sized: a couple of seconds of back-to-back durable
// churn rounds against one long-lived harness must hold every leak gauge
// (fds, reactor channels, dispatcher depth) flat at its baseline.
#include <gtest/gtest.h>

#include <filesystem>

#include "scenario/harness.hpp"
#include "scenario/soak.hpp"

namespace eyw::scenario {
namespace {

TEST(Soak, ShortSoakHoldsEveryGaugeFlat) {
  const std::string journal =
      (std::filesystem::temp_directory_path() / "eyw-test-soak-journal")
          .string();
  std::filesystem::remove_all(journal);

  SoakReport report;
  {
    ServerHarness harness({.journal_dir = journal});
    SoakOptions options;
    options.budget = std::chrono::milliseconds(2'000);
    options.min_rounds = 3;
    options.roster = 12;
    options.seed = 5;
    report = run_soak(harness, 1, options);
    harness.stop();
  }
  std::filesystem::remove_all(journal);

  EXPECT_GE(report.rounds, 3u);
  EXPECT_TRUE(report.all_rounds_ok)
      << "first failed round: " << report.first_failed_round;
  std::string trajectory;
  for (const SoakRound& s : report.samples)
    trajectory += " " + std::to_string(s.open_fds) +
                  (s.settled ? "" : "(unsettled)");
  EXPECT_TRUE(report.fds_flat) << "fd trajectory:" << trajectory;
  EXPECT_TRUE(report.channels_drained);
  EXPECT_TRUE(report.queues_drained);
  // Zero-copy ingest discipline: after the warmup round fills the frame
  // pool, a fixed round shape must recycle every buffer (no new misses),
  // never hit the copying mux fallback, and journal captured wire bytes
  // instead of re-encoding submissions.
  std::string misses;
  for (const SoakRound& s : report.samples)
    misses += " " + std::to_string(s.pool_misses);
  EXPECT_TRUE(report.pool_misses_flat) << "pool miss trajectory:" << misses;
  EXPECT_TRUE(report.ingest_copies_flat);
  EXPECT_TRUE(report.journal_reencodes_zero);
  EXPECT_TRUE(report.ok());
  // Every sample actually settled — an unsettled stack would mean the
  // zero-growth numbers were read mid-drain.
  for (const SoakRound& s : report.samples) EXPECT_TRUE(s.settled);
}

}  // namespace
}  // namespace eyw::scenario
