// Churn scenario: a blinded round survives reporter churn in every phase
// and — the seeded-determinism contract — does so identically on every
// run with the same seed, across fresh server deployments.
#include <gtest/gtest.h>

#include "scenario/churn.hpp"
#include "scenario/harness.hpp"

namespace eyw::scenario {
namespace {

ChurnOutcome run_once(std::size_t roster, std::uint64_t seed) {
  ServerHarness harness;
  const ChurnOutcome outcome =
      run_churn_round(harness, 1, ChurnSchedule::make(roster, 0.30, seed),
                      seed);
  harness.stop();
  return outcome;
}

TEST(ChurnSchedule, PartitionsRosterAndPinsIndexZeroHonest) {
  const ChurnSchedule schedule = ChurnSchedule::make(64, 0.30, 9);
  ASSERT_EQ(schedule.roster(), 64u);
  EXPECT_EQ(schedule.styles[0], ChurnStyle::kHonest);

  // reporters() and expected_missing() partition the roster exactly.
  const auto reporters = schedule.reporters();
  const auto missing = schedule.expected_missing();
  EXPECT_EQ(reporters.size() + missing.size(), schedule.roster());
  std::vector<bool> seen(schedule.roster(), false);
  for (const std::size_t i : reporters) seen[i] = true;
  for (const std::size_t i : missing) {
    EXPECT_FALSE(seen[i]) << "index " << i << " in both partitions";
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);

  // 30% nominal churn leaves a usable quorum but a non-trivial missing
  // list at this roster size.
  EXPECT_GT(missing.size(), 4u);
  EXPECT_GT(reporters.size(), 32u);
}

TEST(ChurnSchedule, SeedDeterminesStyles) {
  const auto a = ChurnSchedule::make(48, 0.30, 7);
  const auto b = ChurnSchedule::make(48, 0.30, 7);
  const auto c = ChurnSchedule::make(48, 0.30, 8);
  EXPECT_EQ(a.styles, b.styles);
  EXPECT_NE(a.styles, c.styles);
}

TEST(ChurnRound, SurvivesChurnIdenticalToHonestSubsetControl) {
  const ChurnOutcome outcome = run_once(48, 21);
  EXPECT_TRUE(outcome.identical);
  EXPECT_TRUE(outcome.missing_as_expected);
  EXPECT_TRUE(outcome.stats_ok);
  ASSERT_TRUE(outcome.ok());
  // The schedule at this seed actually churns someone — otherwise the
  // scenario degenerates to a plain honest round.
  EXPECT_FALSE(outcome.missing.empty());
  EXPECT_EQ(outcome.stats_missing, outcome.missing.size());
}

TEST(ChurnRound, ShedReportersAreRefusedAndAbsorbedBitExactly) {
  // Force a schedule where overload sheds definitely occur (rate 1.0 on a
  // roster this size yields every style), on a harness with a tiny
  // per-connection stream cap: every kShed reporter must be refused with
  // a hintless kUnavailable, land on the missing list, and leave the
  // finalize bit-identical to the honest-subset control.
  ServerHarness harness({.max_streams_per_connection = 8});
  const ChurnSchedule schedule = ChurnSchedule::make(48, 1.0, 17);
  std::size_t shed = 0;
  for (const ChurnStyle s : schedule.styles)
    if (s == ChurnStyle::kShed) ++shed;
  ASSERT_GT(shed, 0u) << "seed 17 must schedule at least one kShed";

  const ChurnOutcome outcome = run_churn_round(harness, 1, schedule, 17);
  EXPECT_EQ(outcome.sheds_attempted, shed);
  EXPECT_TRUE(outcome.sheds_refused_ok)
      << "a shed reporter saw something other than hintless kUnavailable";
  EXPECT_TRUE(outcome.identical)
      << "shed attempts must not perturb the aggregate";
  EXPECT_TRUE(outcome.missing_as_expected);
  EXPECT_TRUE(outcome.stats_ok);
  // The operator surface tells the same story: the reactor counted every
  // shed, and none of those frames was admitted as a report.
  EXPECT_GE(stat(harness.stats_port(), "streams_shed"), shed);
  EXPECT_EQ(stat(harness.stats_port(), "round_reports"),
            outcome.schedule.reporters().size());
  harness.stop();
}

TEST(ChurnRound, SameSeedIsBitIdenticalAcrossDeployments) {
  const ChurnOutcome a = run_once(48, 33);
  const ChurnOutcome b = run_once(48, 33);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical kill timeline, identical missing list, bit-identical
  // finalize — compressed into one digest, then re-checked structurally.
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.missing, b.missing);
  ASSERT_TRUE(a.result.has_value());
  ASSERT_TRUE(b.result.has_value());
  EXPECT_TRUE(results_identical(*a.result, *b.result));
}

TEST(ChurnRound, DifferentSeedsDiverge) {
  const ChurnOutcome a = run_once(32, 101);
  const ChurnOutcome b = run_once(32, 102);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace eyw::scenario
