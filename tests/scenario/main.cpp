// Custom gtest entry point: the crash-churn tests respawn THIS binary as
// the journaled scenario server (fork + execl of /proc/self/exe), so the
// child flag must be recognized before gtest ever parses argv.
#include <gtest/gtest.h>

#include <cstring>

#include "scenario/crash_churn.hpp"

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--scenario-server-child") == 0)
    return eyw::scenario::serve_child_main(argv[2], argv[3]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
