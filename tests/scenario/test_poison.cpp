// Poison scenario: both sides of the blinded-aggregate trust boundary.
// Content poisoning is accepted by design and shifts the aggregate by
// exactly the poisoner's own contribution; structural cheating (a second
// report to double the weight) is refused as a duplicate.
#include <gtest/gtest.h>

#include "scenario/harness.hpp"
#include "scenario/poison.hpp"

namespace eyw::scenario {
namespace {

TEST(Poison, ShiftIsExactlyThePoisonersContribution) {
  ServerHarness harness;
  const PoisonOutcome outcome =
      run_poison_round(harness, 1, /*roster=*/6, /*poisoner=*/4, /*seed=*/77);
  harness.stop();

  EXPECT_TRUE(outcome.shift_exact);
  EXPECT_TRUE(outcome.shift_bounded);
  EXPECT_TRUE(outcome.re_report_refused);
  EXPECT_TRUE(outcome.counters_moved);
  EXPECT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.result.has_value());
}

TEST(Poison, HoldsForOtherRosterPositionsAndSeeds) {
  ServerHarness harness;
  const PoisonOutcome outcome =
      run_poison_round(harness, 1, /*roster=*/5, /*poisoner=*/0, /*seed=*/3);
  harness.stop();
  EXPECT_TRUE(outcome.ok());
}

}  // namespace
}  // namespace eyw::scenario
