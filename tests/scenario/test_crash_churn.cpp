// Crash-churn: SIGKILL a journaled server while churn is active (idle
// connection open, torn frame half-sent, roster partially reported),
// restart over the same journal, and prove the recovered round is the
// round that crashed. The server child is this same test binary re-exec'd
// with --scenario-server-child (see main.cpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "scenario/crash_churn.hpp"

namespace eyw::scenario {
namespace {

pid_t spawn_self(const std::string& journal_dir,
                 const std::string& port_file) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/proc/self/exe", "eyw_test_scenario", "--scenario-server-child",
            journal_dir.c_str(), port_file.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

TEST(CrashChurn, RecoveredRoundIsTheRoundThatCrashed) {
  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "eyw-test-crash-churn")
          .string();
  std::filesystem::create_directories(work_dir);

  const CrashChurnOutcome outcome = run_crash_churn(work_dir, spawn_self);

  EXPECT_TRUE(outcome.missing_match)
      << "missing before: " << outcome.missing_before.size()
      << " after: " << outcome.missing_after.size();
  EXPECT_TRUE(outcome.recovery_clean);
  EXPECT_GE(outcome.records_replayed, 8u);
  EXPECT_TRUE(outcome.duplicate_refused_after_recovery);
  EXPECT_TRUE(outcome.finalize_identical);
  EXPECT_TRUE(outcome.ok());

  std::filesystem::remove_all(work_dir);
}

}  // namespace
}  // namespace eyw::scenario
