// Mutator scenario: every hostile frame in the corpus is refused with its
// expected code, the refusal counters account for 100% of the injections,
// and the finalized aggregate never saw any of it.
#include <gtest/gtest.h>

#include "scenario/harness.hpp"
#include "scenario/mutator.hpp"

namespace eyw::scenario {
namespace {

TEST(Mutator, CorpusCoversEveryRefusalFamily) {
  const auto corpus = mutator_corpus(default_config(), /*round=*/1,
                                     /*roster=*/6, /*shards=*/2);
  ASSERT_GT(corpus.size(), 15u);

  bool saw_replay = false, saw_stale = false;
  std::vector<bool> saw_code(16, false);
  for (const MutatorCase& c : corpus) {
    saw_replay = saw_replay || c.bumps_replay;
    saw_stale = saw_stale || c.bumps_stale;
    saw_code[static_cast<std::size_t>(c.expect)] = true;
  }
  EXPECT_TRUE(saw_replay);
  EXPECT_TRUE(saw_stale);
  // The families the endpoint can actually answer for a framed envelope.
  using proto::ErrorCode;
  for (const ErrorCode code :
       {ErrorCode::kBadMagic, ErrorCode::kBadVersion, ErrorCode::kUnknownKind,
        ErrorCode::kTruncated, ErrorCode::kTrailingBytes, ErrorCode::kMalformed,
        ErrorCode::kGeometryMismatch, ErrorCode::kRejected}) {
    EXPECT_TRUE(saw_code[static_cast<std::size_t>(code)])
        << "no corpus case expects code " << static_cast<unsigned>(code);
  }
}

TEST(Mutator, EveryInjectionRefusedAndAccountedFor) {
  ServerHarness harness;
  const MutatorOutcome outcome = run_mutator(harness, 1, /*repeats=*/3);
  harness.stop();

  EXPECT_GT(outcome.injected, 0u);
  EXPECT_EQ(outcome.refused, outcome.injected);
  EXPECT_TRUE(outcome.counters_account);
  EXPECT_TRUE(outcome.aggregation_clean);
  EXPECT_EQ(outcome.stats_refusals_delta, outcome.injected);
  for (const MutatorCaseReport& c : outcome.cases) {
    EXPECT_TRUE(c.refused_as_expected)
        << c.name << ": expected code " << static_cast<unsigned>(c.expect)
        << " got " << static_cast<unsigned>(c.got);
  }
  EXPECT_TRUE(outcome.ok());
}

}  // namespace
}  // namespace eyw::scenario
