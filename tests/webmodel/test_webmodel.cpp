#include <gtest/gtest.h>

#include "webmodel/ad_detect.hpp"
#include "webmodel/html.hpp"

namespace eyw::webmodel {
namespace {

adnet::Ad sample_ad(core::AdId id = 1) {
  return {.id = id,
          .campaign = 1,
          .landing_url = "https://shop-fishing.test/direct/c1/creative0",
          .image_url = "https://cdn.adnet.test/img/" + std::to_string(id) + ".jpg",
          .offering_category = 10};
}

AdDetector detector() {
  return AdDetector(adnet::AdNetworkRegistry::with_defaults());
}

TEST(ExtractUrls, FindsPlainUrls) {
  const auto urls = extract_urls("visit https://a.test/x and http://b.test/y.");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "https://a.test/x");
  EXPECT_EQ(urls[1], "http://b.test/y");
}

TEST(ExtractUrls, TrimsQuotesAndPunctuation) {
  const auto urls = extract_urls("window.open('https://a.test/p');");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], "https://a.test/p");
}

TEST(ExtractUrls, IgnoresNonUrls) {
  EXPECT_TRUE(extract_urls("httpx nothing here").empty());
  EXPECT_TRUE(extract_urls("").empty());
}

TEST(FindAttribute, BasicForms) {
  EXPECT_EQ(find_attribute(R"(<a href="https://x.test">)", "href"),
            "https://x.test");
  EXPECT_EQ(find_attribute(R"(<a href='single'>)", "href"), "single");
  EXPECT_EQ(find_attribute(R"(<a href = "spaced">)", "href"), "spaced");
  EXPECT_FALSE(find_attribute("<a>", "href").has_value());
}

TEST(PageGenerator, EmbedsAllAds) {
  PageGenerator gen({}, 1);
  std::vector<adnet::Ad> ads;
  for (core::AdId i = 1; i <= 5; ++i) ads.push_back(sample_ad(i));
  const Page page = gen.generate("news.test", ads);
  EXPECT_EQ(page.ads.size(), 5u);
  for (const auto& elem : page.ads)
    EXPECT_NE(page.html.find(elem.ad.image_url), std::string::npos);
}

TEST(PageGenerator, RandomLandingVariesPerImpression) {
  PageGeneratorConfig cfg;
  cfg.markup_weights = {0, 0, 0, 0, 1.0};  // force kRandomLanding
  PageGenerator gen(cfg, 2);
  const Page a = gen.generate("x.test", {sample_ad()});
  const Page b = gen.generate("x.test", {sample_ad()});
  EXPECT_NE(a.ads[0].embedded_landing_url, b.ads[0].embedded_landing_url);
  // Both still derive from the true landing URL.
  EXPECT_EQ(a.ads[0].embedded_landing_url.find(sample_ad().landing_url), 0u);
}

class MarkupStyle : public ::testing::TestWithParam<int> {};

TEST_P(MarkupStyle, LandingPageRecoveredFromEveryMarkup) {
  PageGeneratorConfig cfg;
  cfg.markup_weights = {0, 0, 0, 0, 0};
  cfg.markup_weights[static_cast<std::size_t>(GetParam())] = 1.0;
  PageGenerator gen(cfg, 3);
  const Page page = gen.generate("site.test", {sample_ad()});
  const auto found = detector().detect(page.html);
  ASSERT_EQ(found.size(), 1u) << page.html;
  const auto style = static_cast<AdMarkup>(GetParam());
  if (style == AdMarkup::kRandomLanding) {
    // Randomized landing URL: identity falls back or uses the session URL;
    // content key must be the stable image.
    EXPECT_EQ(found[0].content_key, sample_ad().image_url);
  } else {
    ASSERT_TRUE(found[0].landing_url.has_value()) << page.html;
    EXPECT_EQ(*found[0].landing_url, sample_ad().landing_url);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, MarkupStyle, ::testing::Values(0, 1, 2, 3, 4));

TEST(AdDetector, MultipleAdsInDocumentOrder) {
  PageGeneratorConfig cfg;
  cfg.markup_weights = {1.0, 0, 0, 0, 0};  // anchors only
  PageGenerator gen(cfg, 4);
  std::vector<adnet::Ad> ads;
  for (core::AdId i = 1; i <= 4; ++i) {
    auto ad = sample_ad(i);
    ad.landing_url = "https://shop.test/ad" + std::to_string(i);
    ads.push_back(ad);
  }
  const Page page = gen.generate("m.test", ads);
  const auto found = detector().detect(page.html);
  ASSERT_EQ(found.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(*found[i].landing_url, ads[i].landing_url);
}

TEST(AdDetector, AdNetworkLandingTriggersContentFallback) {
  // The anchor points INTO an ad network: the extension must refrain from
  // using it (click-fraud guard) and identify the ad by content.
  const std::string html =
      R"(<div class="ad-banner"><a href="https://ad.doubleclick.net/r?c=9">)"
      R"(<img src="https://cdn.x.test/creative7.png"></a></div>)";
  const auto found = detector().detect(html);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_FALSE(found[0].landing_url.has_value());
  EXPECT_EQ(found[0].identity(), "https://cdn.x.test/creative7.png");
}

TEST(AdDetector, ContentPagesProduceNoAds) {
  const std::string html =
      "<html><body><p>Story with <a href=\"https://paper.test/a\">links"
      "</a></p><img src=\"https://paper.test/photo.jpg\"></body></html>";
  EXPECT_TRUE(detector().detect(html).empty());
}

TEST(AdDetector, ContentLinksNotMistakenForLanding) {
  // An onclick ad followed by editorial content with links: the landing
  // extraction must not leak into the next paragraph.
  const std::string html =
      R"(<div class="sponsored" onclick="window.location='https://shop.test/p'">)"
      R"(<img src="https://c.test/i.jpg"></div>)"
      R"(<p>Read <a href="https://news.test/other">more</a></p>)";
  const auto found = detector().detect(html);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(*found[0].landing_url, "https://shop.test/p");
}

TEST(AdDetector, DetectIdentityStableAcrossRenders) {
  PageGenerator gen({}, 5);
  const adnet::Ad ad = sample_ad();
  // Whatever markup the generator picks, identity() must resolve to either
  // the true landing URL or the stable content key.
  for (int i = 0; i < 20; ++i) {
    const Page page = gen.generate("s.test", {ad});
    const auto found = detector().detect(page.html);
    ASSERT_EQ(found.size(), 1u);
    const std::string& id = found[0].identity();
    EXPECT_TRUE(id == ad.landing_url || id == ad.image_url ||
                id.starts_with(ad.landing_url + "?session="))
        << id;
  }
}

}  // namespace
}  // namespace eyw::webmodel
