// Integration tests: whole-pipeline properties that span simulator, core,
// client, server, and analysis.
#include <gtest/gtest.h>

#include "analysis/detection_experiment.hpp"
#include "client/extension.hpp"
#include "server/round.hpp"
#include "simulator/engine.hpp"

namespace eyw {
namespace {

sim::SimConfig tiny_world(std::uint32_t cap) {
  sim::SimConfig cfg;
  cfg.num_users = 60;
  cfg.num_websites = 80;
  cfg.num_campaigns = 50;
  cfg.ads_per_website = 8;
  cfg.avg_user_visits = 50;
  cfg.pct_targeted_ads = 0.2;
  // Small panel: open the cohorts up so every campaign reaches a couple of
  // panelists and ground-truth positives exist.
  cfg.audience_cohort = 0.5;
  cfg.frequency_cap = cap;
  cfg.seed = 4321;
  return cfg;
}

TEST(EndToEnd, FalsePositivesStayNearZero) {
  const auto sim = sim::simulate(tiny_world(6));
  const auto out = analysis::run_detection(sim, core::DetectorConfig{});
  EXPECT_LT(out.confusion.false_positive_rate(), 0.02);
  EXPECT_GT(out.confusion.decided(), 1000u);
}

TEST(EndToEnd, DetectionImprovesWithFrequencyCap) {
  // Detected share of ground-truth targeted pairs (abstentions count as
  // undetected: an unclassifiable ad is never flagged).
  const auto detected_at = [](std::uint32_t cap) {
    const auto sim = sim::simulate(tiny_world(cap));
    std::size_t positives = 0;
    for (const auto& [pair, targeted] : sim.targeted_pair)
      positives += targeted;
    const auto out = analysis::run_detection(sim, core::DetectorConfig{});
    return positives == 0 ? 0.0
                          : static_cast<double>(out.confusion.tp) /
                                static_cast<double>(positives);
  };
  const double d1 = detected_at(1);
  const double d8 = detected_at(8);
  EXPECT_LT(d1, 0.2);  // one appearance is (nearly) undetectable
  EXPECT_GT(d8, d1 + 0.5);
}

TEST(EndToEnd, StricterRuleNeedsMoreRepetitions) {
  const auto sim = sim::simulate(tiny_world(3));
  core::DetectorConfig mean_cfg;
  core::DetectorConfig mm_cfg;
  mm_cfg.domains_rule = core::ThresholdRule::kMeanPlusMedian;
  mm_cfg.users_rule = core::ThresholdRule::kMeanPlusMedian;
  const auto mean_out = analysis::run_detection(sim, mean_cfg);
  const auto mm_out = analysis::run_detection(sim, mm_cfg);
  // At a low cap the stricter rule cannot detect more than the mean rule.
  EXPECT_GE(mm_out.confusion.false_negative_rate(),
            mean_out.confusion.false_negative_rate());
}

TEST(EndToEnd, VerdictsCoverEveryObservedPair) {
  const auto sim = sim::simulate(tiny_world(5));
  const auto out = analysis::run_detection(sim, core::DetectorConfig{});
  EXPECT_EQ(out.verdicts.size(), sim.targeted_pair.size());
}

TEST(EndToEnd, PrivacyPipelineMatchesExactCounts) {
  // The blinded-CMS path must agree with cleartext counting for every ad
  // the clients saw (sketch sized so collisions are negligible).
  sim::SimConfig cfg = tiny_world(6);
  cfg.num_users = 25;
  cfg.avg_user_visits = 12;
  sim::Engine engine(sim::World::build(cfg));
  const auto sim = engine.run();

  client::HashUrlMapper mapper(100'000);
  const auto params = sketch::CmsParams::from_error_bounds(3'000, 0.001, 0.001);
  const client::ExtensionConfig ecfg{
      .detector = {}, .cms_params = params, .cms_hash_seed = 21};
  std::vector<client::BrowserExtension> exts;
  for (std::size_t u = 0; u < cfg.num_users; ++u)
    exts.emplace_back(static_cast<core::UserId>(u), ecfg, mapper);

  core::GlobalUserCounter exact;
  for (const auto& si : sim.impressions) {
    const adnet::Ad* ad = engine.ad_server().find_ad(si.impression.ad);
    exts[si.impression.user].observe_ad(ad->landing_url, si.impression.domain,
                                        si.impression.day);
    exact.record(si.impression.user, mapper.map(ad->landing_url));
  }

  util::Rng rng(77);
  const crypto::DhGroup group = crypto::DhGroup::generate(rng, 128);
  server::BackendServer backend({.cms_params = params,
                                 .cms_hash_seed = 21,
                                 .id_space = 100'000,
                                 .users_rule = core::ThresholdRule::kMean});
  server::RoundCoordinator coordinator(
      group, std::span<client::BrowserExtension>(exts), backend, 31);
  const auto round = coordinator.run_full_round(0);
  EXPECT_EQ(round.reports, cfg.num_users);

  std::size_t mismatches = 0, checked = 0;
  for (const auto& si : sim.impressions) {
    const adnet::Ad* ad = engine.ad_server().find_ad(si.impression.ad);
    const auto id = mapper.map(ad->landing_url);
    ++checked;
    if (*backend.users_for(id) != static_cast<double>(exact.users_for(id)))
      ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << "of " << checked;
  // Threshold from the private pipeline within CMS error of the exact one.
  const auto exact_dist =
      core::UsersDistribution::from_counts(exact.distribution());
  EXPECT_NEAR(round.users_threshold,
              exact_dist.threshold(core::ThresholdRule::kMean), 0.25);
  // The estimate can only sit ABOVE (collisions merge, never split).
  EXPECT_GE(round.users_threshold,
            exact_dist.threshold(core::ThresholdRule::kMean) - 1e-9);
}

TEST(EndToEnd, InsufficientDataUsersAbstain) {
  // A user who saw ads on fewer than 4 domains must abstain.
  sim::SimConfig cfg = tiny_world(6);
  cfg.avg_user_visits = 2;  // almost no browsing
  const auto sim = sim::simulate(cfg);
  const auto out = analysis::run_detection(sim, core::DetectorConfig{});
  EXPECT_GT(out.confusion.abstained, 0u);
}

TEST(EndToEnd, IndirectTargetingDetectedWithoutSemanticOverlap) {
  // The headline capability: indirectly-targeted ads have no semantic
  // overlap with the user profile yet are detected by counting. Build a
  // world with ONLY indirect targeted campaigns and verify detections.
  sim::SimConfig cfg = tiny_world(8);
  cfg.indirect_share = 1.0;
  cfg.retargeting_share = 0.0;
  cfg.seed = 777;
  const auto sim = sim::simulate(cfg);
  const auto out = analysis::run_detection(sim, core::DetectorConfig{});
  EXPECT_GT(out.confusion.tp, 0u);
  EXPECT_LT(out.confusion.false_positive_rate(), 0.02);
}

}  // namespace
}  // namespace eyw
