#include "adnet/ad_server.hpp"

#include <gtest/gtest.h>

namespace eyw::adnet {
namespace {

Ad make_ad(core::AdId id, CampaignId campaign, CategoryId cat) {
  return {.id = id,
          .campaign = campaign,
          .landing_url = "https://l" + std::to_string(id) + ".test",
          .image_url = "https://i" + std::to_string(id) + ".test",
          .offering_category = cat};
}

std::vector<Campaign> small_inventory() {
  std::vector<Campaign> out;
  // Campaign 1: direct-targeted at category 3, cap 2.
  Campaign direct{.id = 1,
                  .type = CampaignType::kDirectTargeted,
                  .offering_category = 3,
                  .audience_category = 3,
                  .frequency_cap = 2,
                  .pinned_sites = {},
                  .ads = {make_ad(10, 1, 3)}};
  // Campaign 2: static pinned to sites {0, 1}.
  Campaign stat{.id = 2,
                .type = CampaignType::kStatic,
                .offering_category = 5,
                .audience_category = 0,
                .frequency_cap = 0,
                .pinned_sites = {0, 1},
                .ads = {make_ad(20, 2, 5), make_ad(21, 2, 5)}};
  // Campaign 3: contextual for category 7.
  Campaign ctx{.id = 3,
               .type = CampaignType::kContextual,
               .offering_category = 7,
               .audience_category = 0,
               .frequency_cap = 0,
               .pinned_sites = {},
               .ads = {make_ad(30, 3, 7)}};
  // Campaign 4: retargeting for category 9.
  Campaign ret{.id = 4,
               .type = CampaignType::kRetargeting,
               .offering_category = 9,
               .audience_category = 9,
               .frequency_cap = 0,
               .pinned_sites = {},
               .ads = {make_ad(40, 4, 9)}};
  // Campaign 5: indirect — audience 3, offering 11.
  Campaign ind{.id = 5,
               .type = CampaignType::kIndirectTargeted,
               .offering_category = 11,
               .audience_category = 3,
               .frequency_cap = 0,
               .pinned_sites = {},
               .ads = {make_ad(50, 5, 11)}};
  out.push_back(std::move(direct));
  out.push_back(std::move(stat));
  out.push_back(std::move(ctx));
  out.push_back(std::move(ret));
  out.push_back(std::move(ind));
  return out;
}

UserContext interested_user(CategoryId cat) {
  return {.id = 1, .interests = {cat}, .retargeting_pool = {}};
}

TEST(AdServer, RejectsBadConfig) {
  EXPECT_THROW(AdServer({}, {.targeted_fill_rate = 1.5}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      AdServer({}, {.targeted_fill_rate = 0.5, .audience_cohort = -0.1}, 1),
      std::invalid_argument);
}

TEST(AdServer, RejectsDuplicateAdIds) {
  auto inv = small_inventory();
  inv[1].ads[0].id = 10;  // clash with campaign 1's ad
  EXPECT_THROW(AdServer(std::move(inv), {}, 1), std::invalid_argument);
}

TEST(AdServer, FindAd) {
  AdServer server(small_inventory(), {}, 1);
  ASSERT_NE(server.find_ad(10), nullptr);
  EXPECT_EQ(server.find_ad(10)->campaign, 1u);
  EXPECT_EQ(server.find_ad(999), nullptr);
}

TEST(AdServer, CampaignLookup) {
  AdServer server(small_inventory(), {}, 1);
  EXPECT_EQ(server.campaign(2).type, CampaignType::kStatic);
  EXPECT_THROW((void)server.campaign(99), std::out_of_range);
}

TEST(AdServer, CleanUserNeverGetsTargeted) {
  AdServer server(small_inventory(), {.targeted_fill_rate = 1.0}, 2);
  const UserContext clean{.id = 7, .interests = {}, .retargeting_pool = {}};
  for (int i = 0; i < 50; ++i) {
    for (const auto& served : server.serve(clean, {.domain = 0, .category = 7}, 4)) {
      EXPECT_FALSE(served.targeted_delivery);
      EXPECT_FALSE(is_targeted(served.campaign_type));
    }
  }
}

TEST(AdServer, InterestedUserGetsDirectAndIndirect) {
  AdServer server(small_inventory(), {.targeted_fill_rate = 1.0}, 3);
  const UserContext user = interested_user(3);
  bool saw_direct = false, saw_indirect = false;
  for (int i = 0; i < 60; ++i) {
    for (const auto& served :
         server.serve(user, {.domain = 5, .category = 0}, 2)) {
      if (served.campaign_type == CampaignType::kDirectTargeted)
        saw_direct = true;
      if (served.campaign_type == CampaignType::kIndirectTargeted)
        saw_indirect = true;
      EXPECT_TRUE(served.targeted_delivery);
    }
  }
  EXPECT_TRUE(saw_direct);   // until its cap is reached
  EXPECT_TRUE(saw_indirect);
}

TEST(AdServer, FrequencyCapEnforced) {
  AdServer server(small_inventory(), {.targeted_fill_rate = 1.0}, 4);
  // User interested only in 3: direct campaign (cap 2) + indirect (uncapped).
  const UserContext user = interested_user(3);
  int direct_count = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& served :
         server.serve(user, {.domain = 5, .category = 0}, 1)) {
      direct_count += served.campaign_type == CampaignType::kDirectTargeted;
    }
  }
  EXPECT_EQ(direct_count, 2);
  EXPECT_EQ(server.impressions(user.id, 1), 2u);
}

TEST(AdServer, StaticOnlyOnPinnedSites) {
  AdServer server(small_inventory(), {}, 5);
  const UserContext clean{.id = 9, .interests = {}, .retargeting_pool = {}};
  // Site 2 is not pinned and category 0 has no contextual: nothing served.
  EXPECT_TRUE(server.serve(clean, {.domain = 2, .category = 0}, 4).empty());
  // Site 0 is pinned: static ads appear.
  const auto served = server.serve(clean, {.domain = 0, .category = 0}, 4);
  ASSERT_FALSE(served.empty());
  for (const auto& s : served)
    EXPECT_EQ(s.campaign_type, CampaignType::kStatic);
}

TEST(AdServer, ContextualMatchesCategory) {
  AdServer server(small_inventory(), {}, 6);
  const UserContext clean{.id = 9, .interests = {}, .retargeting_pool = {}};
  const auto served = server.serve(clean, {.domain = 9, .category = 7}, 4);
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served.front().campaign_type, CampaignType::kContextual);
  EXPECT_EQ(served.front().ad->id, 30u);
}

TEST(AdServer, RetargetingNeedsPool) {
  AdServer server(small_inventory(), {.targeted_fill_rate = 1.0}, 7);
  UserContext user{.id = 2, .interests = {}, .retargeting_pool = {}};
  EXPECT_TRUE(server.serve(user, {.domain = 2, .category = 0}, 2).empty());
  user.retargeting_pool.insert(9);
  const auto served = server.serve(user, {.domain = 2, .category = 0}, 2);
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served.front().campaign_type, CampaignType::kRetargeting);
  EXPECT_TRUE(served.front().targeted_delivery);
}

TEST(AdServer, NoDuplicateAdsWithinPageView) {
  AdServer server(small_inventory(), {}, 8);
  const UserContext clean{.id = 3, .interests = {}, .retargeting_pool = {}};
  for (int i = 0; i < 20; ++i) {
    const auto served = server.serve(clean, {.domain = 0, .category = 7}, 8);
    std::set<core::AdId> ids;
    for (const auto& s : served) EXPECT_TRUE(ids.insert(s.ad->id).second);
  }
}

TEST(AdServer, CohortIsDeterministicAndScales) {
  auto inv = small_inventory();
  const Campaign& direct = inv[0];
  AdServer half(small_inventory(), {.audience_cohort = 0.5}, 9);
  // Determinism.
  for (core::UserId u = 0; u < 20; ++u)
    EXPECT_EQ(half.in_cohort(u, direct), half.in_cohort(u, direct));
  // Rough size over many users.
  int members = 0;
  for (core::UserId u = 0; u < 2000; ++u) members += half.in_cohort(u, direct);
  EXPECT_NEAR(members / 2000.0, 0.5, 0.05);
  // Full cohort includes everyone.
  AdServer full(small_inventory(), {.audience_cohort = 1.0}, 9);
  for (core::UserId u = 0; u < 20; ++u)
    EXPECT_TRUE(full.in_cohort(u, direct));
}

TEST(AdServer, ResetCapsRestoresDelivery) {
  AdServer server(small_inventory(), {.targeted_fill_rate = 1.0}, 10);
  const UserContext user = interested_user(3);
  for (int i = 0; i < 10; ++i)
    (void)server.serve(user, {.domain = 5, .category = 0}, 1);
  EXPECT_EQ(server.impressions(user.id, 1), 2u);
  server.reset_caps();
  EXPECT_EQ(server.impressions(user.id, 1), 0u);
}

TEST(CampaignType, Helpers) {
  EXPECT_TRUE(is_targeted(CampaignType::kDirectTargeted));
  EXPECT_TRUE(is_targeted(CampaignType::kIndirectTargeted));
  EXPECT_TRUE(is_targeted(CampaignType::kRetargeting));
  EXPECT_FALSE(is_targeted(CampaignType::kStatic));
  EXPECT_FALSE(is_targeted(CampaignType::kContextual));
  EXPECT_STREQ(to_string(CampaignType::kIndirectTargeted),
               "indirect-targeted");
}

TEST(Category, Names) {
  EXPECT_EQ(category_name(0), "sports");
  EXPECT_EQ(category_name(static_cast<CategoryId>(kNumCategories)), "unknown");
}

}  // namespace
}  // namespace eyw::adnet
