#include "adnet/registry.hpp"

#include <gtest/gtest.h>

namespace eyw::adnet {
namespace {

TEST(UrlHost, ExtractsHost) {
  EXPECT_EQ(url_host("https://ads.example.com/path?q=1"), "ads.example.com");
  EXPECT_EQ(url_host("http://x.test"), "x.test");
  EXPECT_EQ(url_host("x.test/path"), "x.test");
  EXPECT_EQ(url_host("https://h.test:8080/p"), "h.test");
  EXPECT_EQ(url_host(""), "");
}

TEST(Registry, ExactMatch) {
  const auto r = AdNetworkRegistry::with_defaults();
  EXPECT_TRUE(r.is_ad_network_host("doubleclick.net"));
  EXPECT_TRUE(r.is_ad_network_host("criteo.com"));
  EXPECT_FALSE(r.is_ad_network_host("example.org"));
}

TEST(Registry, SubdomainMatch) {
  const auto r = AdNetworkRegistry::with_defaults();
  EXPECT_TRUE(r.is_ad_network_host("ad.doubleclick.net"));
  EXPECT_TRUE(r.is_ad_network_host("a.b.doubleclick.net"));
  // Suffix without dot boundary must NOT match.
  EXPECT_FALSE(r.is_ad_network_host("notdoubleclick.net"));
}

TEST(Registry, UrlMatch) {
  const auto r = AdNetworkRegistry::with_defaults();
  EXPECT_TRUE(r.is_ad_network_url("https://cdn.adnxs.com/x?id=1"));
  EXPECT_FALSE(r.is_ad_network_url("https://shop.example.com/product"));
}

TEST(Registry, CustomDomain) {
  AdNetworkRegistry r;
  EXPECT_EQ(r.size(), 0u);
  r.add("my-adnet.io");
  EXPECT_TRUE(r.is_ad_network_url("https://track.my-adnet.io/click"));
  EXPECT_EQ(r.size(), 1u);
}

}  // namespace
}  // namespace eyw::adnet
